/**
 * @file
 * Benchmark kernels reproducing the memory-access shapes of the
 * paper's evaluation suites (Embench, GAPBS, NAS, SPEC CPU 2017).
 * Each kernel is templated on a pointer policy P (policy.h) and an
 * array accessor Acc (access.h), runs a deterministic workload sized
 * by `scale`, and returns a checksum so baseline/handle equivalence is
 * testable. EXPERIMENTS.md maps each kernel to the paper benchmark
 * whose behaviour it stands in for.
 */

#ifndef ALASKA_KERNELS_KERNELS_H
#define ALASKA_KERNELS_KERNELS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "kernels/access.h"
#include "kernels/policy.h"

namespace alaska::kernels
{

// ===== Embench-like ========================================================

/** crc32: byte-stream CRC over one buffer (hoistable). */
template <typename P, template <typename, typename> class Acc>
int64_t
crc32Kernel(size_t scale)
{
    const size_t n = 1 << scale;
    typename P::Frame frame;
    void *buf_h = P::alloc(n);
    {
        Acc<P, uint8_t> buf(frame, 0, buf_h);
        for (size_t i = 0; i < n; i++)
            buf.store(i, static_cast<uint8_t>(i * 37 + 11));
        uint32_t crc = 0xffffffff;
        for (int rep = 0; rep < 8; rep++) {
            for (size_t i = 0; i < n; i++) {
                crc ^= buf.load(i);
                for (int k = 0; k < 8; k++)
                    crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1) + 1));
            }
            P::poll();
        }
        P::release(buf_h);
        return static_cast<int64_t>(crc);
    }
}

/** matmult-int: dense integer matrix multiply (hoistable). */
template <typename P, template <typename, typename> class Acc>
int64_t
matmultIntKernel(size_t scale)
{
    const size_t n = scale; // n x n matrices
    typename P::Frame frame;
    void *a_h = P::alloc(n * n * 8);
    void *b_h = P::alloc(n * n * 8);
    void *c_h = P::alloc(n * n * 8);
    Acc<P, int64_t> a(frame, 0, a_h), b(frame, 1, b_h), c(frame, 2, c_h);
    for (size_t i = 0; i < n * n; i++) {
        a.store(i, static_cast<int64_t>(i % 17));
        b.store(i, static_cast<int64_t>(i % 13));
    }
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++) {
            int64_t sum = 0;
            for (size_t k = 0; k < n; k++)
                sum += a.load(i * n + k) * b.load(k * n + j);
            c.store(i * n + j, sum);
        }
        P::poll();
    }
    int64_t checksum = 0;
    for (size_t i = 0; i < n * n; i += 7)
        checksum ^= c.load(i);
    P::release(a_h);
    P::release(b_h);
    P::release(c_h);
    return checksum;
}

/** nbody: gravitational step over struct-of-arrays (hoistable). */
template <typename P, template <typename, typename> class Acc>
int64_t
nbodyKernel(size_t scale)
{
    const size_t n = scale;
    typename P::Frame frame;
    void *x_h = P::alloc(n * 8), *y_h = P::alloc(n * 8);
    void *vx_h = P::alloc(n * 8), *vy_h = P::alloc(n * 8);
    Acc<P, double> x(frame, 0, x_h), y(frame, 1, y_h);
    Acc<P, double> vx(frame, 2, vx_h), vy(frame, 3, vy_h);
    for (size_t i = 0; i < n; i++) {
        x.store(i, static_cast<double>(i % 100) * 0.1);
        y.store(i, static_cast<double>(i % 73) * 0.2);
        vx.store(i, 0);
        vy.store(i, 0);
    }
    for (int step = 0; step < 4; step++) {
        for (size_t i = 0; i < n; i++) {
            double fx = 0, fy = 0;
            for (size_t j = 0; j < n; j++) {
                const double dx = x.load(j) - x.load(i);
                const double dy = y.load(j) - y.load(i);
                const double d2 = dx * dx + dy * dy + 1e-3;
                fx += dx / d2;
                fy += dy / d2;
            }
            vx.store(i, vx.load(i) + fx * 1e-4);
            vy.store(i, vy.load(i) + fy * 1e-4);
            P::poll();
        }
        for (size_t i = 0; i < n; i++) {
            x.store(i, x.load(i) + vx.load(i));
            y.store(i, y.load(i) + vy.load(i));
        }
    }
    double checksum = 0;
    for (size_t i = 0; i < n; i++)
        checksum += x.load(i) + y.load(i);
    P::release(x_h);
    P::release(y_h);
    P::release(vx_h);
    P::release(vy_h);
    return static_cast<int64_t>(checksum * 1000);
}

/** primecount: sieve of Eratosthenes (hoistable, byte array). */
template <typename P, template <typename, typename> class Acc>
int64_t
primecountKernel(size_t scale)
{
    const size_t n = scale;
    typename P::Frame frame;
    void *sieve_h = P::alloc(n);
    Acc<P, uint8_t> sieve(frame, 0, sieve_h);
    for (size_t i = 0; i < n; i++)
        sieve.store(i, 1);
    for (size_t p = 2; p * p < n; p++) {
        if (!sieve.load(p))
            continue;
        for (size_t m = p * p; m < n; m += p)
            sieve.store(m, 0);
        P::poll();
    }
    int64_t count = 0;
    for (size_t i = 2; i < n; i++)
        count += sieve.load(i);
    P::release(sieve_h);
    return count;
}

/** A singly linked node used by the list kernels. */
struct ListNode
{
    int64_t key;
    ListNode *next; ///< maybe-handle
};

/**
 * sglib-listsort: build, merge-sort and traverse a linked list
 * (pointer chasing — every node access translates, like the paper's
 * sglib and st).
 */
template <typename P, template <typename, typename> class Acc>
int64_t
listSortKernel(size_t scale)
{
    const size_t n = scale;
    typename P::Frame frame;
    Rng rng(9);
    ListNode *head = nullptr;
    for (size_t i = 0; i < n; i++) {
        auto *node = static_cast<ListNode *>(P::alloc(sizeof(ListNode)));
        auto *raw = static_cast<ListNode *>(frame.pin(0, node));
        raw->key = static_cast<int64_t>(rng.below(1 << 20));
        raw->next = head;
        head = node;
    }

    // Bottom-up merge sort over maybe-handle links.
    auto merge = [&frame](ListNode *a, ListNode *b) -> ListNode * {
        ListNode *head_out = nullptr, **tail = &head_out;
        while (a && b) {
            auto *ra = static_cast<ListNode *>(frame.pin(0, a));
            auto *rb = static_cast<ListNode *>(frame.pin(1, b));
            if (ra->key <= rb->key) {
                *tail = a;
                tail = &ra->next;
                a = ra->next;
            } else {
                *tail = b;
                tail = &rb->next;
                b = rb->next;
            }
        }
        *tail = a ? a : b;
        return head_out;
    };
    // Split into runs of 1 and merge pairwise.
    for (size_t width = 1; width < n; width *= 2) {
        ListNode *rest = head;
        ListNode *sorted = nullptr, **stail = &sorted;
        while (rest) {
            ListNode *a = rest;
            ListNode *cut = rest;
            for (size_t i = 1; i < width && cut; i++)
                cut = static_cast<ListNode *>(frame.pin(0, cut))->next;
            ListNode *b = nullptr;
            if (cut) {
                auto *rc = static_cast<ListNode *>(frame.pin(0, cut));
                b = rc->next;
                rc->next = nullptr;
            }
            ListNode *bcut = b;
            for (size_t i = 1; i < width && bcut; i++)
                bcut = static_cast<ListNode *>(frame.pin(0, bcut))->next;
            if (bcut) {
                auto *rb = static_cast<ListNode *>(frame.pin(0, bcut));
                rest = rb->next;
                rb->next = nullptr;
            } else {
                rest = nullptr;
            }
            ListNode *merged = merge(a, b);
            *stail = merged;
            while (merged) {
                auto *rm = static_cast<ListNode *>(frame.pin(0, merged));
                if (!rm->next) {
                    stail = &rm->next;
                    break;
                }
                merged = rm->next;
            }
            P::poll();
        }
        head = sorted;
    }

    int64_t checksum = 0, rank = 0;
    ListNode *walk = head;
    while (walk) {
        auto *raw = static_cast<ListNode *>(frame.pin(0, walk));
        checksum += raw->key * (++rank % 7);
        ListNode *next = raw->next;
        P::release(walk);
        walk = next;
    }
    return checksum;
}

/** huffbench: greedy Huffman tree build + encode lengths. */
template <typename P, template <typename, typename> class Acc>
int64_t
huffbenchKernel(size_t scale)
{
    struct HuffNode
    {
        int64_t weight;
        HuffNode *left, *right; ///< maybe-handles
    };
    const size_t symbols = 256;
    const size_t n = scale;
    typename P::Frame frame;

    void *freq_h = P::alloc(symbols * 8);
    Acc<P, int64_t> freq(frame, 2, freq_h);
    Rng rng(31);
    for (size_t i = 0; i < symbols; i++)
        freq.store(i, 1);
    for (size_t i = 0; i < n; i++) {
        const auto s = rng.below(symbols);
        freq.store(s, freq.load(s) + 1);
    }

    // Simple O(k^2) huffman: repeatedly merge two smallest roots.
    std::vector<HuffNode *> roots;
    for (size_t s = 0; s < symbols; s++) {
        auto *node = static_cast<HuffNode *>(P::alloc(sizeof(HuffNode)));
        auto *raw = static_cast<HuffNode *>(frame.pin(0, node));
        raw->weight = freq.load(s);
        raw->left = raw->right = nullptr;
        roots.push_back(node);
    }
    while (roots.size() > 1) {
        size_t lo1 = 0, lo2 = 1;
        auto weight = [&frame](HuffNode *node) {
            return static_cast<HuffNode *>(frame.pin(0, node))->weight;
        };
        if (weight(roots[lo2]) < weight(roots[lo1]))
            std::swap(lo1, lo2);
        for (size_t i = 2; i < roots.size(); i++) {
            const int64_t w = weight(roots[i]);
            if (w < weight(roots[lo1])) {
                lo2 = lo1;
                lo1 = i;
            } else if (w < weight(roots[lo2])) {
                lo2 = i;
            }
        }
        auto *parent =
            static_cast<HuffNode *>(P::alloc(sizeof(HuffNode)));
        auto *raw = static_cast<HuffNode *>(frame.pin(0, parent));
        raw->left = roots[lo1];
        raw->right = roots[lo2];
        raw->weight = weight(roots[lo1]) + weight(roots[lo2]);
        roots[std::min(lo1, lo2)] = parent;
        roots.erase(roots.begin() +
                    static_cast<long>(std::max(lo1, lo2)));
        P::poll();
    }

    // Sum of depth*weight over the tree (recursive chase), then free.
    int64_t checksum = 0;
    struct Walker
    {
        typename P::Frame &frame;
        int64_t &sum;
        void
        visit(HuffNode *node, int depth)
        {
            auto *raw = static_cast<HuffNode *>(frame.pin(3, node));
            HuffNode *left = raw->left, *right = raw->right;
            if (!left && !right)
                sum += raw->weight * depth;
            if (left)
                visit(left, depth + 1);
            if (right)
                visit(right, depth + 1);
            P::release(node);
        }
    } walker{frame, checksum};
    walker.visit(roots[0], 0);
    P::release(freq_h);
    return checksum;
}

// ===== GAP-like (CSR graph kernels) ========================================

/** Deterministic CSR graph built in policy-allocated arrays. */
template <typename P, template <typename, typename> class Acc>
struct CsrGraph
{
    size_t n, m;
    void *row_h, *col_h;

    CsrGraph(typename P::Frame &frame, size_t vertices, size_t degree)
        : n(vertices), m(vertices * degree)
    {
        row_h = P::alloc((n + 1) * 8);
        col_h = P::alloc(m * 8);
        Acc<P, int64_t> row(frame, 0, row_h), col(frame, 1, col_h);
        Rng rng(1234);
        for (size_t v = 0; v <= n; v++)
            row.store(v, static_cast<int64_t>(v * degree));
        for (size_t e = 0; e < m; e++)
            col.store(e, static_cast<int64_t>(rng.below(n)));
    }

    void
    destroy()
    {
        P::release(row_h);
        P::release(col_h);
    }
};

/** bfs: frontier-based breadth-first search. */
template <typename P, template <typename, typename> class Acc>
int64_t
bfsKernel(size_t scale)
{
    typename P::Frame frame;
    CsrGraph<P, Acc> g(frame, scale, 8);
    Acc<P, int64_t> row(frame, 0, g.row_h), col(frame, 1, g.col_h);
    void *depth_h = P::alloc(g.n * 8);
    Acc<P, int64_t> depth(frame, 2, depth_h);
    for (size_t v = 0; v < g.n; v++)
        depth.store(v, -1);

    std::vector<int64_t> frontier{0}, next;
    depth.store(0, 0);
    int64_t level = 0, reached = 1;
    while (!frontier.empty()) {
        level++;
        for (int64_t u : frontier) {
            const int64_t begin = row.load(static_cast<size_t>(u));
            const int64_t end = row.load(static_cast<size_t>(u) + 1);
            for (int64_t e = begin; e < end; e++) {
                const int64_t v = col.load(static_cast<size_t>(e));
                if (depth.load(static_cast<size_t>(v)) < 0) {
                    depth.store(static_cast<size_t>(v), level);
                    next.push_back(v);
                    reached++;
                }
            }
        }
        frontier.swap(next);
        next.clear();
        P::poll();
    }
    int64_t checksum = reached;
    for (size_t v = 0; v < g.n; v += 17)
        checksum += depth.load(v) * 3;
    P::release(depth_h);
    g.destroy();
    return checksum;
}

/** pr: pagerank power iterations (pull direction). */
template <typename P, template <typename, typename> class Acc>
int64_t
pagerankKernel(size_t scale)
{
    typename P::Frame frame;
    CsrGraph<P, Acc> g(frame, scale, 8);
    Acc<P, int64_t> row(frame, 0, g.row_h), col(frame, 1, g.col_h);
    void *rank_h = P::alloc(g.n * 8), *next_h = P::alloc(g.n * 8);
    Acc<P, double> rank(frame, 2, rank_h), next(frame, 3, next_h);
    for (size_t v = 0; v < g.n; v++)
        rank.store(v, 1.0 / static_cast<double>(g.n));
    for (int iter = 0; iter < 10; iter++) {
        for (size_t v = 0; v < g.n; v++) {
            double incoming = 0;
            const auto begin =
                static_cast<size_t>(row.load(v));
            const auto end = static_cast<size_t>(row.load(v + 1));
            for (size_t e = begin; e < end; e++)
                incoming += rank.load(
                    static_cast<size_t>(col.load(e)));
            next.store(v, 0.15 / static_cast<double>(g.n) +
                              0.85 * incoming / 8.0);
        }
        for (size_t v = 0; v < g.n; v++)
            rank.store(v, next.load(v));
        P::poll();
    }
    double checksum = 0;
    for (size_t v = 0; v < g.n; v++)
        checksum += rank.load(v);
    P::release(rank_h);
    P::release(next_h);
    g.destroy();
    return static_cast<int64_t>(checksum * 1e6);
}

/** sssp: Bellman-Ford rounds with implicit weight (v % 16 + 1). */
template <typename P, template <typename, typename> class Acc>
int64_t
ssspKernel(size_t scale)
{
    typename P::Frame frame;
    CsrGraph<P, Acc> g(frame, scale, 8);
    Acc<P, int64_t> row(frame, 0, g.row_h), col(frame, 1, g.col_h);
    void *dist_h = P::alloc(g.n * 8);
    Acc<P, int64_t> dist(frame, 2, dist_h);
    constexpr int64_t inf = 1 << 30;
    for (size_t v = 0; v < g.n; v++)
        dist.store(v, inf);
    dist.store(0, 0);
    for (int round = 0; round < 12; round++) {
        bool changed = false;
        for (size_t u = 0; u < g.n; u++) {
            const int64_t du = dist.load(u);
            if (du >= inf)
                continue;
            const auto begin = static_cast<size_t>(row.load(u));
            const auto end = static_cast<size_t>(row.load(u + 1));
            for (size_t e = begin; e < end; e++) {
                const auto v = static_cast<size_t>(col.load(e));
                const int64_t w = static_cast<int64_t>(v % 16) + 1;
                if (du + w < dist.load(v)) {
                    dist.store(v, du + w);
                    changed = true;
                }
            }
        }
        P::poll();
        if (!changed)
            break;
    }
    int64_t checksum = 0;
    for (size_t v = 0; v < g.n; v++) {
        const int64_t d = dist.load(v);
        checksum += (d < inf) ? d : 0;
    }
    P::release(dist_h);
    g.destroy();
    return checksum;
}

/** cc: connected components by label propagation. */
template <typename P, template <typename, typename> class Acc>
int64_t
ccKernel(size_t scale)
{
    typename P::Frame frame;
    CsrGraph<P, Acc> g(frame, scale, 4);
    Acc<P, int64_t> row(frame, 0, g.row_h), col(frame, 1, g.col_h);
    void *label_h = P::alloc(g.n * 8);
    Acc<P, int64_t> label(frame, 2, label_h);
    for (size_t v = 0; v < g.n; v++)
        label.store(v, static_cast<int64_t>(v));
    for (int round = 0; round < 10; round++) {
        bool changed = false;
        for (size_t u = 0; u < g.n; u++) {
            int64_t best = label.load(u);
            const auto begin = static_cast<size_t>(row.load(u));
            const auto end = static_cast<size_t>(row.load(u + 1));
            for (size_t e = begin; e < end; e++)
                best = std::min(
                    best,
                    label.load(static_cast<size_t>(col.load(e))));
            if (best < label.load(u)) {
                label.store(u, best);
                changed = true;
            }
        }
        P::poll();
        if (!changed)
            break;
    }
    int64_t checksum = 0;
    for (size_t v = 0; v < g.n; v++)
        checksum ^= label.load(v) * 2654435761u;
    P::release(label_h);
    g.destroy();
    return checksum;
}

// ===== NAS-like ============================================================

/** cg: conjugate-gradient-shaped sparse matvec iterations. */
template <typename P, template <typename, typename> class Acc>
int64_t
cgKernel(size_t scale)
{
    typename P::Frame frame;
    CsrGraph<P, Acc> g(frame, scale, 12);
    Acc<P, int64_t> row(frame, 0, g.row_h), col(frame, 1, g.col_h);
    void *x_h = P::alloc(g.n * 8), *y_h = P::alloc(g.n * 8);
    Acc<P, double> x(frame, 2, x_h), y(frame, 3, y_h);
    for (size_t v = 0; v < g.n; v++)
        x.store(v, 1.0 + static_cast<double>(v % 7));
    double norm = 0;
    for (int iter = 0; iter < 8; iter++) {
        norm = 0;
        for (size_t i = 0; i < g.n; i++) {
            double sum = 0;
            const auto begin = static_cast<size_t>(row.load(i));
            const auto end = static_cast<size_t>(row.load(i + 1));
            for (size_t e = begin; e < end; e++) {
                const auto j = static_cast<size_t>(col.load(e));
                sum += x.load(j) * (1.0 / (1.0 + double(j % 9)));
            }
            y.store(i, sum);
            norm += sum * sum;
        }
        const double inv = 1.0 / std::sqrt(norm + 1e-12);
        for (size_t i = 0; i < g.n; i++)
            x.store(i, y.load(i) * inv);
        P::poll();
    }
    P::release(x_h);
    P::release(y_h);
    g.destroy();
    return static_cast<int64_t>(norm * 1e3);
}

/** mg: 3D 7-point stencil smoothing (hoistable grid). */
template <typename P, template <typename, typename> class Acc>
int64_t
mgKernel(size_t scale)
{
    const size_t d = scale; // d^3 grid
    typename P::Frame frame;
    void *grid_h = P::alloc(d * d * d * 8);
    void *out_h = P::alloc(d * d * d * 8);
    Acc<P, double> grid(frame, 0, grid_h), out(frame, 1, out_h);
    auto at = [d](size_t i, size_t j, size_t k) {
        return (i * d + j) * d + k;
    };
    for (size_t i = 0; i < d * d * d; i++) {
        grid.store(i, static_cast<double>(i % 101) * 0.01);
        out.store(i, grid.load(i)); // boundary cells are copied back
    }
    for (int sweep = 0; sweep < 4; sweep++) {
        for (size_t i = 1; i + 1 < d; i++) {
            for (size_t j = 1; j + 1 < d; j++) {
                for (size_t k = 1; k + 1 < d; k++) {
                    const double v =
                        grid.load(at(i, j, k)) * 0.5 +
                        (grid.load(at(i - 1, j, k)) +
                         grid.load(at(i + 1, j, k)) +
                         grid.load(at(i, j - 1, k)) +
                         grid.load(at(i, j + 1, k)) +
                         grid.load(at(i, j, k - 1)) +
                         grid.load(at(i, j, k + 1))) /
                            12.0;
                    out.store(at(i, j, k), v);
                }
            }
            P::poll();
        }
        for (size_t i = 0; i < d * d * d; i++)
            grid.store(i, out.load(i));
    }
    double checksum = 0;
    for (size_t i = 0; i < d * d * d; i += 11)
        checksum += grid.load(i);
    P::release(grid_h);
    P::release(out_h);
    return static_cast<int64_t>(checksum * 1e3);
}

/** ep: embarrassingly parallel random tally (barely touches memory). */
template <typename P, template <typename, typename> class Acc>
int64_t
epKernel(size_t scale)
{
    typename P::Frame frame;
    void *tally_h = P::alloc(16 * 8);
    Acc<P, int64_t> tally(frame, 0, tally_h);
    for (size_t i = 0; i < 16; i++)
        tally.store(i, 0);
    Rng rng(55);
    for (size_t i = 0; i < scale; i++) {
        const double a = rng.real() * 2 - 1;
        const double b = rng.real() * 2 - 1;
        const double t = a * a + b * b;
        if (t <= 1.0) {
            const auto ring = static_cast<size_t>(t * 16.0);
            tally.store(ring, tally.load(ring) + 1);
        }
        if ((i & 0xffff) == 0)
            P::poll();
    }
    int64_t checksum = 0;
    for (size_t i = 0; i < 16; i++)
        checksum += tally.load(i) * static_cast<int64_t>(i + 1);
    P::release(tally_h);
    return checksum;
}

/** is: bucketed integer sort (NAS IS shape). */
template <typename P, template <typename, typename> class Acc>
int64_t
isKernel(size_t scale)
{
    const size_t n = scale;
    const size_t buckets = 1 << 10;
    typename P::Frame frame;
    void *keys_h = P::alloc(n * 8);
    void *count_h = P::alloc(buckets * 8);
    void *out_h = P::alloc(n * 8);
    Acc<P, int64_t> keys(frame, 0, keys_h), count(frame, 1, count_h),
        out(frame, 2, out_h);
    Rng rng(77);
    for (size_t i = 0; i < n; i++)
        keys.store(i, static_cast<int64_t>(rng.below(buckets)));
    for (int rep = 0; rep < 6; rep++) {
        for (size_t b = 0; b < buckets; b++)
            count.store(b, 0);
        for (size_t i = 0; i < n; i++) {
            const auto k = static_cast<size_t>(keys.load(i));
            count.store(k, count.load(k) + 1);
        }
        int64_t pos = 0;
        for (size_t b = 0; b < buckets; b++) {
            const int64_t c = count.load(b);
            count.store(b, pos);
            pos += c;
        }
        for (size_t i = 0; i < n; i++) {
            const auto k = static_cast<size_t>(keys.load(i));
            const int64_t p = count.load(k);
            out.store(static_cast<size_t>(p), keys.load(i));
            count.store(k, p + 1);
        }
        P::poll();
    }
    int64_t checksum = 0;
    for (size_t i = 0; i < n; i += 97)
        checksum = checksum * 31 + out.load(i);
    P::release(keys_h);
    P::release(count_h);
    P::release(out_h);
    return checksum;
}

// ===== SPEC-like ===========================================================

/** mcf: sorting an array of pointers by dereferenced keys — the
 *  paper's "4 translations per comparison" case. */
template <typename P, template <typename, typename> class Acc>
int64_t
mcfSortKernel(size_t scale)
{
    struct Arc
    {
        int64_t cost;
        int64_t flow;
    };
    const size_t n = scale;
    typename P::Frame frame;
    Rng rng(3);
    std::vector<Arc *> arcs(n); // the pointer array lives in the app
    for (size_t i = 0; i < n; i++) {
        auto *arc = static_cast<Arc *>(P::alloc(sizeof(Arc)));
        auto *raw = static_cast<Arc *>(frame.pin(0, arc));
        raw->cost = static_cast<int64_t>(rng.below(1 << 24));
        raw->flow = static_cast<int64_t>(i);
        arcs[i] = arc;
    }
    for (int rep = 0; rep < 6; rep++) {
        // Perturb, then sort by (cost, flow) through the handles.
        for (size_t i = 0; i < n; i += 3) {
            auto *raw = static_cast<Arc *>(frame.pin(0, arcs[i]));
            raw->cost = (raw->cost * 1103515245 + 12345) & ((1 << 24) - 1);
        }
        std::sort(arcs.begin(), arcs.end(),
                  [&frame](Arc *a, Arc *b) {
                      auto *ra = static_cast<Arc *>(frame.pin(0, a));
                      auto *rb = static_cast<Arc *>(frame.pin(1, b));
                      if (ra->cost != rb->cost)
                          return ra->cost < rb->cost;
                      return ra->flow < rb->flow;
                  });
        P::poll();
    }
    int64_t checksum = 0;
    for (size_t i = 0; i < n; i++) {
        auto *raw = static_cast<Arc *>(frame.pin(0, arcs[i]));
        checksum += raw->cost * static_cast<int64_t>(i % 5);
        P::release(arcs[i]);
    }
    return checksum;
}

/** lbm: two-grid stream/collide over a large array (fully hoistable —
 *  the paper's best case). */
template <typename P, template <typename, typename> class Acc>
int64_t
lbmKernel(size_t scale)
{
    const size_t d = scale;
    const size_t cells = d * d;
    typename P::Frame frame;
    void *a_h = P::alloc(cells * 9 * 8);
    void *b_h = P::alloc(cells * 9 * 8);
    {
        Acc<P, double> init(frame, 0, a_h);
        for (size_t i = 0; i < cells * 9; i++)
            init.store(i, 1.0 / 9.0);
    }
    const int dx[9] = {0, 1, -1, 0, 0, 1, -1, 1, -1};
    const int dy[9] = {0, 0, 0, 1, -1, 1, -1, -1, 1};
    for (int step = 0; step < 6; step++) {
        // Translations hoisted to the outermost (time-step) loop.
        Acc<P, double> src(frame, 0, (step % 2 == 0) ? a_h : b_h);
        Acc<P, double> dst(frame, 1, (step % 2 == 0) ? b_h : a_h);
        for (size_t y = 1; y + 1 < d; y++) {
            for (size_t x = 1; x + 1 < d; x++) {
                const size_t cell = y * d + x;
                double rho = 0;
                for (int q = 0; q < 9; q++)
                    rho += src.load(cell * 9 + q);
                for (int q = 0; q < 9; q++) {
                    const size_t to =
                        (y + dy[q]) * d + (x + dx[q]);
                    const double eq = rho / 9.0;
                    dst.store(to * 9 + q,
                              src.load(cell * 9 + q) * 0.4 + eq * 0.6);
                }
            }
            P::poll();
        }
    }
    double checksum = 0;
    {
        Acc<P, double> fin(frame, 0, a_h);
        for (size_t i = 0; i < cells * 9; i += 13)
            checksum += fin.load(i);
    }
    P::release(a_h);
    P::release(b_h);
    return static_cast<int64_t>(checksum);
}

/** xalancbmk: a DOM-ish tree of small nodes walked with per-node
 *  translations (short translation lifetimes, no hoisting). */
template <typename P, template <typename, typename> class Acc>
int64_t
xalancTreeKernel(size_t scale)
{
    struct TreeNode
    {
        int64_t tag;
        TreeNode *child[4]; ///< maybe-handles
    };
    typename P::Frame frame;
    Rng rng(13);
    // Build a random 4-ary tree of `scale` nodes.
    std::vector<TreeNode *> nodes;
    nodes.reserve(scale);
    for (size_t i = 0; i < scale; i++) {
        auto *node =
            static_cast<TreeNode *>(P::alloc(sizeof(TreeNode)));
        auto *raw = static_cast<TreeNode *>(frame.pin(0, node));
        raw->tag = static_cast<int64_t>(rng.below(64));
        for (auto &child : raw->child)
            child = nullptr;
        if (i > 0) {
            TreeNode *parent = nodes[rng.below(i)];
            auto *praw = static_cast<TreeNode *>(frame.pin(1, parent));
            praw->child[rng.below(4)] = node;
        }
        nodes.push_back(node);
    }
    // Repeated DFS with tag-dependent work (virtual-dispatch-ish).
    int64_t checksum = 0;
    for (int rep = 0; rep < 10; rep++) {
        std::vector<TreeNode *> stack{nodes[0]};
        while (!stack.empty()) {
            TreeNode *node = stack.back();
            stack.pop_back();
            auto *raw = static_cast<TreeNode *>(frame.pin(0, node));
            switch (raw->tag & 3) {
              case 0: checksum += raw->tag; break;
              case 1: checksum ^= raw->tag << 3; break;
              case 2: checksum -= raw->tag * 7; break;
              default: checksum = checksum * 31 + raw->tag; break;
            }
            for (TreeNode *child : raw->child) {
                if (child)
                    stack.push_back(child);
            }
        }
        P::poll();
    }
    for (TreeNode *node : nodes)
        P::release(node);
    return checksum;
}

/** xz: LZ77-style window matching over one big buffer (hoistable). */
template <typename P, template <typename, typename> class Acc>
int64_t
xzMatchKernel(size_t scale)
{
    const size_t n = scale;
    typename P::Frame frame;
    void *buf_h = P::alloc(n);
    Acc<P, uint8_t> buf(frame, 0, buf_h);
    Rng rng(21);
    for (size_t i = 0; i < n; i++) {
        // Compressible-ish: repeatable runs with noise.
        buf.store(i, static_cast<uint8_t>((i / 64) * 7 +
                                          (rng.below(16) == 0)));
    }
    int64_t total_match = 0;
    const size_t window = 1 << 10;
    for (size_t pos = window; pos < n; pos += 37) {
        size_t best = 0;
        for (size_t back = 1; back < window; back += 13) {
            size_t len = 0;
            while (len < 64 && pos + len < n &&
                   buf.load(pos + len) == buf.load(pos - back + len)) {
                len++;
            }
            best = std::max(best, len);
        }
        total_match += static_cast<int64_t>(best);
        if ((pos & 0x3fff) == 0)
            P::poll();
    }
    P::release(buf_h);
    return total_match;
}

/** deepsjeng: transposition-table probe/store churn (hashed random
 *  access into one table). */
template <typename P, template <typename, typename> class Acc>
int64_t
deepsjengTtKernel(size_t scale)
{
    const size_t entries = 1 << 16;
    typename P::Frame frame;
    void *tt_h = P::alloc(entries * 2 * 8); // key, score pairs
    Acc<P, int64_t> tt(frame, 0, tt_h);
    for (size_t i = 0; i < entries * 2; i++)
        tt.store(i, 0);
    Rng rng(17);
    int64_t hits = 0;
    for (size_t i = 0; i < scale; i++) {
        const auto key = static_cast<int64_t>(rng.next() >> 1);
        const auto slot =
            static_cast<size_t>(key) & (entries - 1);
        if (tt.load(slot * 2) == key) {
            hits += tt.load(slot * 2 + 1);
        } else {
            tt.store(slot * 2, key);
            tt.store(slot * 2 + 1, key % 997);
        }
        if ((i & 0xfff) == 0)
            P::poll();
    }
    P::release(tt_h);
    return hits;
}

/** imagick: 2D 5x5 convolution (hoistable). */
template <typename P, template <typename, typename> class Acc>
int64_t
imagickConvKernel(size_t scale)
{
    const size_t d = scale;
    typename P::Frame frame;
    void *img_h = P::alloc(d * d * 8);
    void *out_h = P::alloc(d * d * 8);
    Acc<P, double> img(frame, 0, img_h), out(frame, 1, out_h);
    for (size_t i = 0; i < d * d; i++) {
        img.store(i, static_cast<double>((i * 131) % 255));
        out.store(i, img.load(i)); // border pixels are copied back
    }
    for (int pass = 0; pass < 3; pass++) {
        for (size_t y = 2; y + 2 < d; y++) {
            for (size_t x = 2; x + 2 < d; x++) {
                double acc = 0;
                for (int ky = -2; ky <= 2; ky++) {
                    for (int kx = -2; kx <= 2; kx++) {
                        acc += img.load((y + ky) * d + (x + kx)) *
                               (1.0 / (1 + std::abs(ky) + std::abs(kx)));
                    }
                }
                out.store(y * d + x, acc / 25.0);
            }
            P::poll();
        }
        for (size_t i = 0; i < d * d; i++)
            img.store(i, out.load(i));
    }
    double checksum = 0;
    for (size_t i = 0; i < d * d; i += 7)
        checksum += img.load(i);
    P::release(img_h);
    P::release(out_h);
    return static_cast<int64_t>(checksum);
}

} // namespace alaska::kernels

#endif // ALASKA_KERNELS_KERNELS_H
