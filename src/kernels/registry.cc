#include "kernels/registry.h"

#include "kernels/kernels.h"

namespace alaska::kernels
{

namespace
{

/** Instantiate the four configurations of one kernel template. */
#define ALASKA_KERNEL(suite, name, stands_for, fn, chasing, scale)     \
    KernelEntry                                                        \
    {                                                                  \
        suite, name, stands_for, chasing, scale,                       \
            &fn<RawPolicy, HoistedArray>,                              \
            &fn<AlaskaPolicy, HoistedArray>,                           \
            &fn<AlaskaPolicy, PerAccessArray>,                         \
            &fn<AlaskaNoTrackPolicy, HoistedArray>                     \
    }

const std::vector<KernelEntry> registry = {
    // Embench-like
    ALASKA_KERNEL("embench", "crc32", "crc32", crc32Kernel, false,
                  17),
    ALASKA_KERNEL("embench", "matmult-int", "matmult-int",
                  matmultIntKernel, false, 144),
    ALASKA_KERNEL("embench", "nbody", "nbody", nbodyKernel, false, 768),
    ALASKA_KERNEL("embench", "primecount", "primecount",
                  primecountKernel, false, 3000000),
    ALASKA_KERNEL("embench", "listsort", "sglib/st (pointer chasing)",
                  listSortKernel, true, 60000),
    ALASKA_KERNEL("embench", "huffbench", "huffbench", huffbenchKernel,
                  true, 200000),
    // GAP-like
    ALASKA_KERNEL("gap", "bfs", "bfs", bfsKernel, false, 200000),
    ALASKA_KERNEL("gap", "pr", "pr/pr_spmv", pagerankKernel, false,
                  60000),
    ALASKA_KERNEL("gap", "sssp", "sssp", ssspKernel, false, 60000),
    ALASKA_KERNEL("gap", "cc", "cc/cc_sv", ccKernel, false, 100000),
    // NAS-like
    ALASKA_KERNEL("nas", "cg", "cg", cgKernel, false, 40000),
    ALASKA_KERNEL("nas", "mg", "mg/bt/sp/lu", mgKernel, false, 48),
    ALASKA_KERNEL("nas", "ep", "ep", epKernel, false, 2000000),
    ALASKA_KERNEL("nas", "is", "is", isKernel, false, 300000),
    // SPEC-like
    ALASKA_KERNEL("spec", "mcf-sort", "605.mcf (pointer sort)",
                  mcfSortKernel, true, 60000),
    ALASKA_KERNEL("spec", "lbm-grid", "619.lbm", lbmKernel, false, 160),
    ALASKA_KERNEL("spec", "xalanc-tree",
                  "623.xalancbmk (small-node DOM)", xalancTreeKernel,
                  true, 100000),
    ALASKA_KERNEL("spec", "xz-match", "657.xz", xzMatchKernel, false,
                  1 << 18),
    ALASKA_KERNEL("spec", "deepsjeng-tt", "631.deepsjeng (TT probes)",
                  deepsjengTtKernel, false, 2000000),
    ALASKA_KERNEL("spec", "imagick-conv", "638.imagick",
                  imagickConvKernel, false, 192),
};

#undef ALASKA_KERNEL

} // anonymous namespace

const std::vector<KernelEntry> &
kernelRegistry()
{
    return registry;
}

} // namespace alaska::kernels
