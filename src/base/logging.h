/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a core dump / debugger can be used.
 * fatal()  — the caller misused the library or the environment cannot
 *            support the request; exits with an error code.
 * warn()   — something works, but not as well as it should.
 * inform() — plain status output.
 */

#ifndef ALASKA_BASE_LOGGING_H
#define ALASKA_BASE_LOGGING_H

#include <cstdarg>

namespace alaska
{

/** Print a formatted message and abort(). Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace alaska

/**
 * Always-on assertion for library invariants. Unlike assert(3) this is not
 * compiled out in release builds; invariant checks in this codebase are
 * cheap relative to the operations they guard.
 */
#define ALASKA_ASSERT(cond, fmt, ...)                                     \
    do {                                                                  \
        if (__builtin_expect(!(cond), 0)) {                               \
            ::alaska::panic("assertion failed at %s:%d: %s: " fmt,        \
                            __FILE__, __LINE__, #cond, ##__VA_ARGS__);    \
        }                                                                 \
    } while (0)

#endif // ALASKA_BASE_LOGGING_H
