/**
 * @file
 * The speculative byte copy used by concurrent relocation.
 *
 * A mover copies object bytes between its mark CAS and its commit
 * CAS, so the copy may race a writer that pinned (and thereby cleared
 * the mover's mark via translateConcurrent) in that window. The
 * protocol makes the race benign — a cleared mark fails the commit
 * CAS and the torn copy is discarded unread — but ThreadSanitizer
 * cannot see protocol arguments, only the racing plain accesses.
 * Under TSAN builds the copy therefore runs as an uninstrumented
 * volatile byte loop (the attribute alone would not help: TSAN
 * intercepts memcpy/memmove at the libc layer regardless of caller
 * instrumentation).
 */

#ifndef ALASKA_BASE_SPECULATIVE_COPY_H
#define ALASKA_BASE_SPECULATIVE_COPY_H

#include <cstddef>
#include <cstring>

namespace alaska
{

#if defined(__SANITIZE_THREAD__)
__attribute__((no_sanitize("thread"))) inline void
speculativeCopy(void *dst, const void *src, size_t n)
{
    volatile unsigned char *d = static_cast<unsigned char *>(dst);
    const volatile unsigned char *s =
        static_cast<const unsigned char *>(src);
    for (size_t i = 0; i < n; i++)
        d[i] = s[i];
}
#else
inline void
speculativeCopy(void *dst, const void *src, size_t n)
{
    std::memmove(dst, src, n);
}
#endif

} // namespace alaska

#endif // ALASKA_BASE_SPECULATIVE_COPY_H
