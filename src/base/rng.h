/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All experiments in this repository must be reproducible run-to-run, so
 * every stochastic component draws from an explicitly seeded Rng rather
 * than std::random_device. The generator is xoshiro256**, seeded through
 * splitmix64 as its authors recommend.
 */

#ifndef ALASKA_BASE_RNG_H
#define ALASKA_BASE_RNG_H

#include <cstdint>

namespace alaska
{

/** A small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    /**
     * The repository-wide default seed. Every stochastic component
     * that does not take an explicit seed (MeshModel, the service's
     * mesh pass, the harness timelines) defaults to this one value, so
     * "same binary, same flags" is always "same run".
     */
    static constexpr uint64_t defaultSeed = 0xa1a56a5eedULL;

    explicit Rng(uint64_t seed = defaultSeed) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t l = static_cast<uint64_t>(m);
        if (l < bound) {
            uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace alaska

#endif // ALASKA_BASE_RNG_H
