/**
 * @file
 * Wall-clock stopwatch used by the benchmark harnesses.
 */

#ifndef ALASKA_BASE_TIMER_H
#define ALASKA_BASE_TIMER_H

#include <chrono>
#include <cstdint>

namespace alaska
{

/** A steady-clock stopwatch. Starts on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Nanoseconds elapsed since construction or last reset(). */
    uint64_t
    elapsedNs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start_)
                .count());
    }

    /** Seconds elapsed since construction or last reset(). */
    double
    elapsedSec() const
    {
        return static_cast<double>(elapsedNs()) * 1e-9;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace alaska

#endif // ALASKA_BASE_TIMER_H
