#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace alaska
{

Summary
summarize(std::vector<double> values)
{
    Summary s;
    s.count = values.size();
    if (values.empty())
        return s;

    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    const size_t n = values.size();
    s.median = (n % 2 == 1) ? values[n / 2]
                            : 0.5 * (values[n / 2 - 1] + values[n / 2]);

    double sum = 0;
    for (double v : values)
        sum += v;
    s.mean = sum / static_cast<double>(n);

    double sq = 0;
    for (double v : values)
        sq += (v - s.mean) * (v - s.mean);
    s.stddev = (n > 1) ? std::sqrt(sq / static_cast<double>(n - 1)) : 0.0;
    return s;
}

double
geomean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double log_sum = 0;
    for (double r : ratios) {
        ALASKA_ASSERT(r > 0, "geomean requires positive ratios, got %f", r);
        log_sum += std::log(r);
    }
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

double
LatencyDigest::percentile(double q) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<uint64_t> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double rank = (q / 100.0) * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) * (1.0 - frac) +
           static_cast<double>(sorted[hi]) * frac;
}

double
LatencyDigest::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0;
    for (uint64_t v : samples_)
        sum += static_cast<double>(v);
    return sum / static_cast<double>(samples_.size());
}

double
LatencyDigest::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double sq = 0;
    for (uint64_t v : samples_)
        sq += (static_cast<double>(v) - m) * (static_cast<double>(v) - m);
    return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

void
LatencyDigest::merge(const LatencyDigest &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
}

} // namespace alaska
