/**
 * @file
 * Small statistics helpers used by the benchmark harnesses: summary
 * statistics, geometric means of ratios, and latency percentile digests.
 */

#ifndef ALASKA_BASE_STATS_H
#define ALASKA_BASE_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alaska
{

/** Arithmetic summary of a sample. */
struct Summary
{
    double min = 0;
    double max = 0;
    double mean = 0;
    double median = 0;
    double stddev = 0;
    size_t count = 0;
};

/** Compute min/max/mean/median/stddev of a sample (copies + sorts). */
Summary summarize(std::vector<double> values);

/**
 * Geometric mean of a set of ratios.
 *
 * Used for the "geomean overhead" rows of Figures 7 and 8. Ratios must be
 * positive; overhead percentages should be converted to ratios (1 + o)
 * before calling and back after.
 */
double geomean(const std::vector<double> &ratios);

/**
 * An accumulating latency digest with exact percentiles.
 *
 * Stores every sample; fine for the ~1e6 sample counts our harnesses
 * produce.
 */
class LatencyDigest
{
  public:
    /** Record one latency observation (nanoseconds). */
    void add(uint64_t ns) { samples_.push_back(ns); }

    /** Number of recorded samples. */
    size_t count() const { return samples_.size(); }

    /** q-th percentile (q in [0,100]) in nanoseconds; 0 if empty. */
    double percentile(double q) const;

    /** Arithmetic mean in nanoseconds; 0 if empty. */
    double mean() const;

    /** Sample standard deviation in nanoseconds; 0 if < 2 samples. */
    double stddev() const;

    /** Merge another digest into this one. */
    void merge(const LatencyDigest &other);

    /** Drop all samples. */
    void clear() { samples_.clear(); }

  private:
    std::vector<uint64_t> samples_;
};

} // namespace alaska

#endif // ALASKA_BASE_STATS_H
