#include "mesh/mesh_model.h"

#include "base/logging.h"

namespace alaska
{

namespace
{

constexpr size_t meshClasses[] = {16, 32, 64, 128, 256, 512, 1024, 2048};
constexpr int nMeshClasses =
    static_cast<int>(sizeof(meshClasses) / sizeof(meshClasses[0]));

bool
bitGet(const std::array<uint64_t, 4> &bits, uint32_t i)
{
    return bits[i >> 6] & (UINT64_C(1) << (i & 63));
}

void
bitSet(std::array<uint64_t, 4> &bits, uint32_t i)
{
    bits[i >> 6] |= (UINT64_C(1) << (i & 63));
}

void
bitClear(std::array<uint64_t, 4> &bits, uint32_t i)
{
    bits[i >> 6] &= ~(UINT64_C(1) << (i & 63));
}

bool
disjoint(const std::array<uint64_t, 4> &a, const std::array<uint64_t, 4> &b)
{
    for (int w = 0; w < 4; w++) {
        if (a[w] & b[w])
            return false;
    }
    return true;
}

} // anonymous namespace

int
MeshModel::classOf(size_t size)
{
    if (size > maxSmall)
        return -1;
    for (int c = 0; c < nMeshClasses; c++) {
        if (meshClasses[c] >= size)
            return c;
    }
    return -1;
}

size_t
MeshModel::classSize(int cls)
{
    return meshClasses[cls];
}

MeshModel::Span *
MeshModel::rootOf(Span *span)
{
    // Path-compressed walk of the mesh chain.
    Span *root = span;
    while (root->meshedInto)
        root = root->meshedInto;
    while (span->meshedInto) {
        Span *next = span->meshedInto;
        span->meshedInto = root;
        span = next;
    }
    return root;
}

uint64_t
MeshModel::allocLarge(size_t size)
{
    const size_t page = space_->pages().pageSize();
    const size_t need = (size + page - 1) / page * page;
    const uint64_t addr = space_->map(need);
    large_.emplace(addr, need);
    active_ += need;
    space_->touch(addr, need);
    return addr;
}

uint64_t
MeshModel::alloc(size_t size)
{
    if (size == 0)
        size = 1;
    const int cls = classOf(size);
    if (cls < 0)
        return allocLarge(size);

    auto &bin = bins_[cls];
    // Mesh's allocation: fill the *attached* span (random slot within
    // it — the randomization that makes meshing probable) until it is
    // full, then attach the densest partial span found by bounded
    // random probing. Dead spans encountered while probing are
    // swap-removed so the bin stays densely allocatable under churn.
    Span *span = attached_[cls];
    if (span && (span->meshedInto || !span->allocatable ||
                 span->full())) {
        span = nullptr;
    }
    if (!span) {
        for (int probe = 0; probe < 16 && !bin.empty(); probe++) {
            const size_t idx = rng_.below(bin.size());
            Span *cand = bin[idx];
            if (cand->meshedInto || !cand->allocatable) {
                bin[idx] = bin.back();
                bin.pop_back();
                continue;
            }
            if (cand->full())
                continue;
            if (!span || cand->liveSlots > span->liveSlots)
                span = cand;
        }
        attached_[cls] = span;
    }
    if (!span) {
        auto fresh = std::make_unique<Span>();
        fresh->base = space_->map(spanBytes);
        fresh->cls = cls;
        fresh->slots = static_cast<uint32_t>(spanBytes / classSize(cls));
        span = fresh.get();
        spans_.emplace(fresh->base, std::move(fresh));
        bin.push_back(span);
        attached_[cls] = span;
    }

    // Random free slot.
    uint32_t slot;
    do {
        slot = static_cast<uint32_t>(rng_.below(span->slots));
    } while (bitGet(span->bitmap, slot));
    bitSet(span->bitmap, slot);
    span->liveSlots++;

    const uint64_t token = span->base + slot * classSize(cls);
    active_ += classSize(cls);
    // Physical write lands on the root's frame if meshed (it is not:
    // allocatable spans are never meshed losers).
    space_->touch(token, classSize(cls));
    return token;
}

void
MeshModel::free(uint64_t token)
{
    auto large_it = large_.find(token);
    if (large_it != large_.end()) {
        active_ -= large_it->second;
        space_->unmap(token, large_it->second);
        large_.erase(large_it);
        return;
    }

    auto it = spans_.upper_bound(token);
    ALASKA_ASSERT(it != spans_.begin(), "free of unknown token");
    --it;
    ALASKA_ASSERT(token < it->first + spanBytes,
                  "free of unknown token");
    Span *span = it->second.get();
    Span *root = rootOf(span);
    const size_t csize = classSize(span->cls);
    const auto slot = static_cast<uint32_t>((token - span->base) / csize);

    // Slots of meshed spans live at the same offsets in the root frame.
    ALASKA_ASSERT(bitGet(root->bitmap, slot), "double free");
    bitClear(root->bitmap, slot);
    root->liveSlots--;
    active_ -= csize;

    if (root->liveSlots == 0) {
        // Frame fully free: release it. Virtual spans stay retired.
        space_->discard(root->base, spanBytes);
        root->allocatable = false;
    }
}

bool
MeshModel::tryMesh(Span *a, Span *b)
{
    if (a == b || a->meshedInto || b->meshedInto)
        return false;
    if (!a->allocatable || !b->allocatable)
        return false;
    if (a->liveSlots == 0 || b->liveSlots == 0)
        return false;
    if (!disjoint(a->bitmap, b->bitmap))
        return false;

    // Mesh b onto a: union the occupancy, alias b's page to a's frame.
    for (int w = 0; w < 4; w++)
        a->bitmap[w] |= b->bitmap[w];
    a->liveSlots += b->liveSlots;
    b->liveSlots = 0;
    b->meshedInto = a;
    b->allocatable = false;
    space_->pages().alias(b->base, a->base);
    meshes_++;
    return true;
}

void
MeshModel::meshPass()
{
    for (int cls = 0; cls < nMeshClasses; cls++) {
        auto &bin = bins_[cls];
        // Compact the bin (dropping dead/meshed spans) while gathering
        // mesh candidates.
        std::vector<Span *> keep;
        std::vector<Span *> candidates;
        keep.reserve(bin.size());
        candidates.reserve(bin.size());
        for (Span *span : bin) {
            if (span->meshedInto || !span->allocatable)
                continue;
            keep.push_back(span);
            if (span->liveSlots > 0 && !span->full())
                candidates.push_back(span);
        }
        bin.swap(keep);
        if (candidates.size() < 2)
            continue;
        // Randomized pair probing, as in Mesh's SplitMesher.
        for (int probe = 0; probe < probeBudget_; probe++) {
            Span *a = candidates[rng_.below(candidates.size())];
            Span *b = candidates[rng_.below(candidates.size())];
            tryMesh(a, b);
        }
    }
}

} // namespace alaska
