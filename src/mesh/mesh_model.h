/**
 * @file
 * A model of Mesh (Powers et al., PLDI 2019), the paper's strongest
 * non-mobile baseline.
 *
 * Mesh places same-size-class objects at *randomized* slot offsets
 * within page-sized spans. A background pass probes random span pairs;
 * when two spans' occupied slots are disjoint, their virtual pages are
 * "meshed" onto one physical frame, halving their residency without
 * moving any virtual address. Objects never move in virtual space —
 * which is also why Mesh cannot beat handle-based compaction when
 * occupancy is high or object sizes are skewed (Figure 11).
 *
 * This model reproduces the allocation policy, the randomized meshing
 * pass, and the page accounting (through PageModel::alias); it does not
 * reproduce the kernel remapping machinery, which only affects how, not
 * whether, frames are shared.
 */

#ifndef ALASKA_MESH_MESH_MODEL_H
#define ALASKA_MESH_MESH_MODEL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc_sim/alloc_model.h"
#include "base/rng.h"
#include "sim/address_space.h"

namespace alaska
{

/** Mesh-like meshing allocator model. */
class MeshModel : public AllocModel
{
  public:
    /** Span size: one page, as in Mesh's MiniHeaps. */
    static constexpr size_t spanBytes = 4096;
    /** Largest size served from spans. */
    static constexpr size_t maxSmall = 2048;

    explicit MeshModel(uint64_t seed = Rng::defaultSeed,
                       AddressSpace *space = nullptr)
        : rng_(seed)
    {
        if (space) {
            space_ = space;
        } else {
            owned_ = std::make_unique<PhantomAddressSpace>();
            space_ = owned_.get();
        }
    }

    uint64_t alloc(size_t size) override;
    void free(uint64_t token) override;
    size_t rss() const override { return space_->rss(); }
    size_t activeBytes() const override { return active_; }
    const char *name() const override { return "mesh"; }

    /** One randomized meshing pass (the background thread's beat). */
    void maintain() override { meshPass(); }

    /** Number of successful meshes so far. */
    size_t meshCount() const { return meshes_; }

    /** Pairs probed per class per maintain() call. */
    void setProbeBudget(int probes) { probeBudget_ = probes; }

  private:
    struct Span
    {
        uint64_t base = 0;
        int cls = 0;
        uint32_t slots = 0;
        uint32_t liveSlots = 0;
        /** Occupancy bitmap; 4096/16 = 256 slots max -> 4 words. */
        std::array<uint64_t, 4> bitmap{};
        /** If meshed away, the span now holding our slots. */
        Span *meshedInto = nullptr;
        bool allocatable = true;

        bool full() const { return liveSlots == slots; }
    };

    static int classOf(size_t size);
    static size_t classSize(int cls);

    Span *rootOf(Span *span);
    uint64_t allocLarge(size_t size);
    void meshPass();
    /** Try to mesh spans a and b; true on success. */
    bool tryMesh(Span *a, Span *b);

    AddressSpace *space_ = nullptr;
    std::unique_ptr<PhantomAddressSpace> owned_;
    Rng rng_;
    /** Per class: all allocatable spans (may contain full ones). */
    std::vector<std::vector<Span *>> bins_ =
        std::vector<std::vector<Span *>>(8);
    /** Per class: the span currently being filled (Mesh "attaches" a
     *  MiniHeap and fills it before moving on). */
    std::vector<Span *> attached_ = std::vector<Span *>(8, nullptr);
    /** Span lookup by base address (ordered: interior lookups). */
    std::map<uint64_t, std::unique_ptr<Span>> spans_;
    std::unordered_map<uint64_t, size_t> large_;
    size_t active_ = 0;
    size_t meshes_ = 0;
    int probeBudget_ = 64;
};

} // namespace alaska

#endif // ALASKA_MESH_MESH_MODEL_H
