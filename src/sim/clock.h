/**
 * @file
 * Clock abstraction for the defragmentation control loop.
 *
 * The paper's controller sleeps and measures wall-clock time. For
 * deterministic tests and for experiments whose interesting dynamics
 * span minutes (Figure 11), we drive the controller from a virtual
 * clock; the real-clock implementation behaves like the paper's.
 */

#ifndef ALASKA_SIM_CLOCK_H
#define ALASKA_SIM_CLOCK_H

#include <chrono>

namespace alaska
{

/** A monotonically nondecreasing clock in seconds. */
class Clock
{
  public:
    virtual ~Clock() = default;
    /** Current time in seconds since an arbitrary epoch. */
    virtual double now() const = 0;
};

/** Wall-clock implementation. */
class RealClock : public Clock
{
  public:
    RealClock() : start_(std::chrono::steady_clock::now()) {}

    double
    now() const override
    {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Manually advanced clock for deterministic experiments. */
class VirtualClock : public Clock
{
  public:
    double now() const override { return now_; }

    /** Advance time by dt seconds. */
    void advance(double dt) { now_ += dt; }

    /** Jump to an absolute time (must not go backwards). */
    void
    set(double t)
    {
        if (t > now_)
            now_ = t;
    }

  private:
    double now_ = 0.0;
};

} // namespace alaska

#endif // ALASKA_SIM_CLOCK_H
