#include "sim/address_space.h"

#include <sys/mman.h>

#include <cstring>

#include "base/logging.h"
#include "base/speculative_copy.h"

namespace alaska
{

uint64_t
RealAddressSpace::map(size_t bytes)
{
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED)
        fatal("RealAddressSpace: cannot map %zu bytes", bytes);
    return reinterpret_cast<uint64_t>(mem);
}

void
RealAddressSpace::unmap(uint64_t base, size_t bytes)
{
    pages_.discard(base, bytes);
    ::munmap(reinterpret_cast<void *>(base), bytes);
}

void
RealAddressSpace::copy(uint64_t dst, uint64_t src, size_t len)
{
    // speculativeCopy, not memmove: relocation campaigns copy between
    // their grace wait and their commit CAS, a window in which an
    // aborting mutator may still write the source (see
    // base/speculative_copy.h for why this is benign and how TSAN
    // builds are kept quiet about it).
    speculativeCopy(reinterpret_cast<void *>(dst),
                    reinterpret_cast<void *>(src), len);
    pages_.touch(dst, len);
}

void
RealAddressSpace::touch(uint64_t addr, size_t len)
{
    pages_.touch(addr, len);
}

void
RealAddressSpace::discard(uint64_t addr, size_t len)
{
    pages_.discard(addr, len);
    // Mirror the accounting with the real syscall on full pages.
    const size_t page = pages_.pageSize();
    const uint64_t first = (addr + page - 1) & ~(page - 1);
    const uint64_t end = (addr + len) & ~(page - 1);
    if (end > first) {
        ::madvise(reinterpret_cast<void *>(first), end - first,
                  MADV_DONTNEED);
    }
}

void *
RealAddressSpace::raw(uint64_t addr)
{
    return reinterpret_cast<void *>(addr);
}

uint64_t
PhantomAddressSpace::map(size_t bytes)
{
    // Keep regions page-aligned and separated by a guard page.
    const size_t page = pages_.pageSize();
    const uint64_t need = (bytes + page - 1) / page * page + page;
    return next_.fetch_add(need, std::memory_order_relaxed);
}

void
PhantomAddressSpace::unmap(uint64_t base, size_t bytes)
{
    pages_.discard(base, bytes);
}

void
PhantomAddressSpace::copy(uint64_t dst, uint64_t src, size_t len)
{
    (void)src;
    pages_.touch(dst, len);
}

void
PhantomAddressSpace::touch(uint64_t addr, size_t len)
{
    pages_.touch(addr, len);
}

void
PhantomAddressSpace::discard(uint64_t addr, size_t len)
{
    pages_.discard(addr, len);
}

} // namespace alaska
