/**
 * @file
 * Pluggable heap address spaces.
 *
 * Allocators in this repository (Anchorage, Mesh, the glibc/jemalloc
 * models) operate on abstract 64-bit addresses and route all page-level
 * effects through a PageModel. Two implementations exist:
 *
 *  - RealAddressSpace: addresses are actual mmap'd memory; copies are
 *    real memmoves and discards are real madvise(MADV_DONTNEED) calls in
 *    addition to the accounting. Used when object contents matter
 *    (Figure 9's Redis workload, all correctness tests).
 *
 *  - PhantomAddressSpace: addresses are accounting-only; no bytes are
 *    backed. Used for experiments whose heaps would not fit in the test
 *    machine (Figure 11's 50 GiB-policy workload, scaled): the layout,
 *    metadata, fragmentation and controller dynamics are identical —
 *    only the payload bytes are absent.
 */

#ifndef ALASKA_SIM_ADDRESS_SPACE_H
#define ALASKA_SIM_ADDRESS_SPACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sim/page_model.h"

namespace alaska
{

/**
 * Abstract heap address space with page accounting.
 *
 * map/copy/touch/discard and rss() are safe to call concurrently: page
 * accounting is striped inside PageModel, real mappings go through the
 * (thread-safe) kernel, and phantom bases come from an atomic cursor.
 * unmap() must not race accesses to the region being unmapped.
 */
class AddressSpace
{
  public:
    virtual ~AddressSpace() = default;

    /** Reserve a region of bytes; returns its base address. */
    virtual uint64_t map(size_t bytes) = 0;

    /** Release a region previously returned by map(). */
    virtual void unmap(uint64_t base, size_t bytes) = 0;

    /** memmove dst <- src (and touch destination pages). */
    virtual void copy(uint64_t dst, uint64_t src, size_t len) = 0;

    /** Application write: touch pages (and nothing else). */
    virtual void touch(uint64_t addr, size_t len) = 0;

    /** MADV_DONTNEED the given range. */
    virtual void discard(uint64_t addr, size_t len) = 0;

    /**
     * Raw pointer for an address, or nullptr if this space has no real
     * backing (phantom mode).
     */
    virtual void *raw(uint64_t addr) = 0;

    /** Resident set size attributable to this space, in bytes. */
    size_t rss() const { return pages_.rss(); }

    /** The underlying page model (for tests and Mesh aliasing). */
    PageModel &pages() { return pages_; }
    const PageModel &pages() const { return pages_; }

  protected:
    PageModel pages_;
};

/** mmap-backed address space; addresses are real pointers. */
class RealAddressSpace : public AddressSpace
{
  public:
    uint64_t map(size_t bytes) override;
    void unmap(uint64_t base, size_t bytes) override;
    void copy(uint64_t dst, uint64_t src, size_t len) override;
    void touch(uint64_t addr, size_t len) override;
    void discard(uint64_t addr, size_t len) override;
    void *raw(uint64_t addr) override;
};

/** Accounting-only address space; addresses are synthetic. */
class PhantomAddressSpace : public AddressSpace
{
  public:
    uint64_t map(size_t bytes) override;
    void unmap(uint64_t base, size_t bytes) override;
    void copy(uint64_t dst, uint64_t src, size_t len) override;
    void touch(uint64_t addr, size_t len) override;
    void discard(uint64_t addr, size_t len) override;
    void *raw(uint64_t /*addr*/) override { return nullptr; }

  private:
    /** Next synthetic base; starts high and far from real mappings.
     *  Atomic so sharded allocators may map sub-heaps concurrently. */
    std::atomic<uint64_t> next_{UINT64_C(0x100000000000)};
};

} // namespace alaska

#endif // ALASKA_SIM_ADDRESS_SPACE_H
