#include "sim/page_model.h"

namespace alaska
{

uint64_t
PageModel::frameOf(uint64_t vpage) const
{
    if (__builtin_expect(
            aliasCount_.load(std::memory_order_acquire) == 0, 1))
        return vpage;
    std::lock_guard<std::mutex> guard(aliasMutex_);
    auto it = aliases_.find(vpage);
    return it == aliases_.end() ? vpage : it->second;
}

void
PageModel::touch(uint64_t addr, size_t len)
{
    if (len == 0)
        return;
    const uint64_t first = addr / pageSize_;
    const uint64_t last = (addr + len - 1) / pageSize_;
    for (uint64_t p = first; p <= last; p++) {
        const uint64_t frame = frameOf(p);
        Stripe &stripe = stripeOf(frame);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.insert(frame);
    }
}

void
PageModel::discard(uint64_t addr, size_t len)
{
    if (len < pageSize_)
        return;
    // Only pages fully inside the range are released.
    const uint64_t first = (addr + pageSize_ - 1) / pageSize_;
    const uint64_t end = (addr + len) / pageSize_;
    for (uint64_t p = first; p < end; p++) {
        const uint64_t frame = frameOf(p);
        Stripe &stripe = stripeOf(frame);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.erase(frame);
    }
}

void
PageModel::alias(uint64_t vpage_addr, uint64_t target_page_addr)
{
    std::lock_guard<std::mutex> alias_guard(aliasMutex_);
    const uint64_t vpage = vpage_addr / pageSize_;
    // Resolve the target under the lock so chained aliases collapse to
    // the root frame at insertion time.
    auto target_it = aliases_.find(target_page_addr / pageSize_);
    const uint64_t target = target_it == aliases_.end()
                                ? target_page_addr / pageSize_
                                : target_it->second;
    auto vpage_it = aliases_.find(vpage);
    const uint64_t old_frame =
        vpage_it == aliases_.end() ? vpage : vpage_it->second;
    if (old_frame == target)
        return;
    // Publish the mapping before releasing the old frame: a touch
    // racing this call then lands on the shared frame (or, pre-publish,
    // transiently re-inserts the frame we are about to erase — an
    // overcount, never an undercount).
    aliases_[vpage] = target;
    aliasCount_.store(aliases_.size(), std::memory_order_release);
    {
        Stripe &stripe = stripeOf(old_frame);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.erase(old_frame);
    }
}

void
PageModel::unalias(uint64_t vpage_addr)
{
    std::lock_guard<std::mutex> alias_guard(aliasMutex_);
    const uint64_t vpage = vpage_addr / pageSize_;
    if (aliases_.erase(vpage) == 0)
        return;
    aliasCount_.store(aliases_.size(), std::memory_order_release);
    // The split fault's private copy is resident from birth.
    Stripe &stripe = stripeOf(vpage);
    std::lock_guard<std::mutex> guard(stripe.mutex);
    stripe.resident.insert(vpage);
}

size_t
PageModel::aliasedPages() const
{
    return aliasCount_.load(std::memory_order_acquire);
}

size_t
PageModel::residentPages() const
{
    size_t total = 0;
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        total += stripe.resident.size();
    }
    return total;
}

bool
PageModel::isResident(uint64_t addr) const
{
    const uint64_t frame = frameOf(addr / pageSize_);
    Stripe &stripe = stripeOf(frame);
    std::lock_guard<std::mutex> guard(stripe.mutex);
    return stripe.resident.count(frame) > 0;
}

void
PageModel::clear()
{
    std::lock_guard<std::mutex> alias_guard(aliasMutex_);
    for (Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.clear();
    }
    aliases_.clear();
    aliasCount_.store(0, std::memory_order_release);
}

} // namespace alaska
