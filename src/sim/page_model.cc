#include "sim/page_model.h"

namespace alaska
{

uint64_t
PageModel::frameOf(uint64_t vpage) const
{
    const AliasMap *aliases = aliases_.load(std::memory_order_acquire);
    if (__builtin_expect(aliases == nullptr, 1))
        return vpage;
    auto it = aliases->find(vpage);
    return it == aliases->end() ? vpage : it->second;
}

void
PageModel::touch(uint64_t addr, size_t len)
{
    if (len == 0)
        return;
    const uint64_t first = addr / pageSize_;
    const uint64_t last = (addr + len - 1) / pageSize_;
    for (uint64_t p = first; p <= last; p++) {
        const uint64_t frame = frameOf(p);
        Stripe &stripe = stripeOf(frame);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.insert(frame);
    }
}

void
PageModel::discard(uint64_t addr, size_t len)
{
    if (len < pageSize_)
        return;
    // Only pages fully inside the range are released.
    const uint64_t first = (addr + pageSize_ - 1) / pageSize_;
    const uint64_t end = (addr + len) / pageSize_;
    for (uint64_t p = first; p < end; p++) {
        const uint64_t frame = frameOf(p);
        Stripe &stripe = stripeOf(frame);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.erase(frame);
    }
}

void
PageModel::alias(uint64_t vpage_addr, uint64_t target_page_addr)
{
    std::lock_guard<std::mutex> write_guard(aliasWriteMutex_);
    const uint64_t vpage = vpage_addr / pageSize_;
    const uint64_t target = frameOf(target_page_addr / pageSize_);
    // Release the frame previously backing vpage.
    const uint64_t old_frame = frameOf(vpage);
    {
        Stripe &stripe = stripeOf(old_frame);
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.erase(old_frame);
    }
    const AliasMap *current = aliases_.load(std::memory_order_relaxed);
    auto next = current ? std::make_unique<AliasMap>(*current)
                        : std::make_unique<AliasMap>();
    (*next)[vpage] = target;
    aliases_.store(next.get(), std::memory_order_release);
    // alias() requires quiescence (no concurrent PageModel calls), so
    // the superseded snapshot has no readers and dies here.
    ownedAliasMap_ = std::move(next);
}

size_t
PageModel::residentPages() const
{
    size_t total = 0;
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        total += stripe.resident.size();
    }
    return total;
}

bool
PageModel::isResident(uint64_t addr) const
{
    const uint64_t frame = frameOf(addr / pageSize_);
    Stripe &stripe = stripeOf(frame);
    std::lock_guard<std::mutex> guard(stripe.mutex);
    return stripe.resident.count(frame) > 0;
}

void
PageModel::clear()
{
    std::lock_guard<std::mutex> write_guard(aliasWriteMutex_);
    for (Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        stripe.resident.clear();
    }
    // clear() shares alias()'s quiescence requirement, so the map can
    // be dropped outright; nullptr restores the no-aliases fast path.
    aliases_.store(nullptr, std::memory_order_release);
    ownedAliasMap_.reset();
}

} // namespace alaska
