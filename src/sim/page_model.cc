#include "sim/page_model.h"

namespace alaska
{

uint64_t
PageModel::frameOf(uint64_t vpage) const
{
    auto it = aliases_.find(vpage);
    return it == aliases_.end() ? vpage : it->second;
}

void
PageModel::touch(uint64_t addr, size_t len)
{
    if (len == 0)
        return;
    const uint64_t first = addr / pageSize_;
    const uint64_t last = (addr + len - 1) / pageSize_;
    for (uint64_t p = first; p <= last; p++)
        resident_.insert(frameOf(p));
}

void
PageModel::discard(uint64_t addr, size_t len)
{
    if (len < pageSize_)
        return;
    // Only pages fully inside the range are released.
    const uint64_t first = (addr + pageSize_ - 1) / pageSize_;
    const uint64_t end = (addr + len) / pageSize_;
    for (uint64_t p = first; p < end; p++)
        resident_.erase(frameOf(p));
}

void
PageModel::alias(uint64_t vpage_addr, uint64_t target_page_addr)
{
    const uint64_t vpage = vpage_addr / pageSize_;
    const uint64_t target = frameOf(target_page_addr / pageSize_);
    // Release the frame previously backing vpage.
    resident_.erase(frameOf(vpage));
    aliases_[vpage] = target;
}

bool
PageModel::isResident(uint64_t addr) const
{
    return resident_.count(frameOf(addr / pageSize_)) > 0;
}

void
PageModel::clear()
{
    resident_.clear();
    aliases_.clear();
}

} // namespace alaska
