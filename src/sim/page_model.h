/**
 * @file
 * Page-granular residency accounting.
 *
 * The paper measures defragmentation success as the process's resident
 * set size over time, sampled from the kernel. Sampling /proc from
 * inside unit tests is noisy and machine-dependent, so every allocator
 * in this repository routes its page-level effects (first touch,
 * MADV_DONTNEED, and Mesh-style page aliasing) through this model, which
 * produces exact, deterministic RSS numbers. Real-backed address spaces
 * additionally perform the matching mmap/madvise calls so the behaviour
 * stays honest.
 */

#ifndef ALASKA_SIM_PAGE_MODEL_H
#define ALASKA_SIM_PAGE_MODEL_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace alaska
{

/** Deterministic model of kernel page residency for a process. */
class PageModel
{
  public:
    explicit PageModel(size_t page_size = 4096) : pageSize_(page_size) {}

    /** Page size in bytes. */
    size_t pageSize() const { return pageSize_; }

    /** Mark every page overlapping [addr, addr+len) resident. */
    void touch(uint64_t addr, size_t len);

    /**
     * MADV_DONTNEED on [addr, addr+len): pages *fully contained* in the
     * range lose residency (partial edge pages stay, as in the kernel).
     */
    void discard(uint64_t addr, size_t len);

    /**
     * Mesh-style aliasing: virtual page vpage is remapped to the
     * physical frame backing target. vpage's own frame (if any) is
     * freed; future touches of either virtual page land on the shared
     * frame.
     */
    void alias(uint64_t vpage_addr, uint64_t target_page_addr);

    /** Resident bytes (distinct physical frames times page size). */
    size_t rss() const { return resident_.size() * pageSize_; }

    /** Number of distinct resident physical frames. */
    size_t residentPages() const { return resident_.size(); }

    /** True iff the page containing addr is resident. */
    bool isResident(uint64_t addr) const;

    /** Forget everything. */
    void clear();

  private:
    /** Map a virtual page index to its physical frame index. */
    uint64_t frameOf(uint64_t vpage) const;

    size_t pageSize_;
    /** Resident physical frames (canonical page indices). */
    std::unordered_set<uint64_t> resident_;
    /** Virtual page -> physical frame, for aliased pages only. */
    std::unordered_map<uint64_t, uint64_t> aliases_;
};

} // namespace alaska

#endif // ALASKA_SIM_PAGE_MODEL_H
