/**
 * @file
 * Page-granular residency accounting.
 *
 * The paper measures defragmentation success as the process's resident
 * set size over time, sampled from the kernel. Sampling /proc from
 * inside unit tests is noisy and machine-dependent, so every allocator
 * in this repository routes its page-level effects (first touch,
 * MADV_DONTNEED, and Mesh-style page aliasing) through this model, which
 * produces exact, deterministic RSS numbers. Real-backed address spaces
 * additionally perform the matching mmap/madvise calls so the behaviour
 * stays honest.
 *
 * Thread safety: touch(), discard(), and the queries may be called
 * concurrently — the resident set is striped over cache-line-padded
 * mutexes selected by page frame, so touches from threads working in
 * different heap regions rarely share a lock. This matters because the
 * sharded Anchorage service (anchorage/anchorage_service.h) drives
 * touches from every shard concurrently, and concurrent relocation
 * campaigns copy (and therefore touch) outside any heap lock.
 *
 * alias()/unalias() are also safe to call concurrently with the other
 * operations: the alias map lives behind its own mutex, and the
 * no-alias fast path (the overwhelmingly common case — all modes
 * except meshing) stays a single relaxed-atomic load. A touch racing
 * an alias() may transiently keep the superseded frame resident; RSS
 * can briefly overcount by a page but never undercounts.
 */

#ifndef ALASKA_SIM_PAGE_MODEL_H
#define ALASKA_SIM_PAGE_MODEL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace alaska
{

/** Deterministic model of kernel page residency for a process. */
class PageModel
{
  public:
    explicit PageModel(size_t page_size = 4096) : pageSize_(page_size) {}

    PageModel(const PageModel &) = delete;
    PageModel &operator=(const PageModel &) = delete;

    /** Page size in bytes. */
    size_t pageSize() const { return pageSize_; }

    /** Mark every page overlapping [addr, addr+len) resident. */
    void touch(uint64_t addr, size_t len);

    /**
     * MADV_DONTNEED on [addr, addr+len): pages *fully contained* in the
     * range lose residency (partial edge pages stay, as in the kernel).
     */
    void discard(uint64_t addr, size_t len);

    /**
     * Mesh-style aliasing: virtual page vpage is remapped to the
     * physical frame backing target. vpage's own frame (if any) is
     * released; future touches of either virtual page land on the
     * shared frame. Safe to call concurrently with touch/discard/
     * queries (see the file comment for the transient-overcount
     * caveat); callers that need a pass to observe a consistent block
     * layout synchronize at a higher level (the mesh pass holds its
     * shard lock).
     */
    void alias(uint64_t vpage_addr, uint64_t target_page_addr);

    /**
     * Undo an alias: vpage gets back a private frame (itself) and that
     * frame becomes resident — the model of a copy-on-write split
     * fault, where the kernel materializes a private copy of the
     * shared frame on write. No-op if vpage is not aliased.
     */
    void unalias(uint64_t vpage_addr);

    /** Number of virtual pages currently aliased onto another frame. */
    size_t aliasedPages() const;

    /** Physical frame address backing the page containing addr. */
    uint64_t frameAddrOf(uint64_t addr) const
    {
        return frameOf(addr / pageSize_) * pageSize_;
    }

    /** Resident bytes (distinct physical frames times page size). */
    size_t rss() const { return residentPages() * pageSize_; }

    /** Number of distinct resident physical frames. */
    size_t residentPages() const;

    /** True iff the page containing addr is resident. */
    bool isResident(uint64_t addr) const;

    /** Forget everything. */
    void clear();

  private:
    /** Stripe count for the resident set; power of two. */
    static constexpr uint64_t numStripes = 16;

    /**
     * One resident-set stripe, cache-line padded so concurrent touches
     * from threads in different stripes never share a line.
     */
    struct alignas(64) Stripe
    {
        mutable std::mutex mutex;
        std::unordered_set<uint64_t> resident;
    };

    using AliasMap = std::unordered_map<uint64_t, uint64_t>;

    Stripe &
    stripeOf(uint64_t frame) const
    {
        return stripes_[frame & (numStripes - 1)];
    }

    /** Map a virtual page index to its physical frame index. */
    uint64_t frameOf(uint64_t vpage) const;

    size_t pageSize_;
    mutable Stripe stripes_[numStripes];

    /**
     * Virtual page -> physical frame, for aliased pages only, guarded
     * by aliasMutex_. aliasCount_ mirrors aliases_.size() so frameOf()
     * can skip the lock entirely while no aliases exist — the touch
     * fast path every non-meshing mode runs stays one atomic load.
     * Lock order: aliasMutex_ before stripe mutexes; frameOf() drops
     * aliasMutex_ before its caller takes a stripe lock, so the two
     * never nest in the reverse direction.
     */
    std::atomic<size_t> aliasCount_{0};
    mutable std::mutex aliasMutex_;
    AliasMap aliases_;
};

} // namespace alaska

#endif // ALASKA_SIM_PAGE_MODEL_H
