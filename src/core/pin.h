/**
 * @file
 * Pin sets (paper §3.4, §4.1.3).
 *
 * A PinFrame is what the Alaska compiler would emit in a function's
 * prelude: a fixed-size slot array in the stack frame, registered on the
 * thread's shadow stack. Pinning a handle is a single plain store into a
 * slot followed by the translation — no atomics, no heap traffic. At a
 * barrier, the runtime walks every thread's frames to unify pin sets.
 *
 * The slot count per frame and the slot index per translation are static
 * decisions; in this library the "compiler output" is either produced by
 * the mini-compiler (src/compiler/pin_tracking) or written by hand in
 * kernels, mirroring what the LLVM pass would have emitted.
 */

#ifndef ALASKA_CORE_PIN_H
#define ALASKA_CORE_PIN_H

#include <cstdint>

#include "base/logging.h"
#include "core/handle.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace alaska
{

/**
 * A pin-set frame over a caller-provided, stack-resident slot array.
 *
 * The calling thread must be registered with the runtime.
 */
class PinFrame
{
  public:
    PinFrame(uint64_t *slots, uint32_t count)
        : slots_(slots), state_(checkedThreadState())
    {
        for (uint32_t i = 0; i < count; i++)
            slots_[i] = 0;
        state_.frames.push_back(PinFrameRecord{slots, count});
    }

    ~PinFrame() { state_.frames.pop_back(); }

    PinFrame(const PinFrame &) = delete;
    PinFrame &operator=(const PinFrame &) = delete;

    /**
     * Pin a maybe-handle into a slot and return its translation. This is
     * the store+translate pair the compiler emits before a memory access
     * (paper: "before a handle is translated, the handle is stored in
     * the pin set").
     */
    void *
    pin(uint32_t slot, const void *maybe_handle)
    {
        slots_[slot] = reinterpret_cast<uint64_t>(maybe_handle);
        return translate(maybe_handle);
    }

    /** Typed convenience overload. */
    template <typename T>
    T *
    pin(uint32_t slot, T *maybe_handle)
    {
        return static_cast<T *>(
            pin(slot, static_cast<const void *>(maybe_handle)));
    }

    /**
     * Release a slot (the compiler's release(handle) at end of the
     * translation's live range).
     */
    void release(uint32_t slot) { slots_[slot] = 0; }

  private:
    /**
     * Pin frames hang off the calling thread's shadow stack, so both a
     * live runtime and a ThreadRegistration are hard requirements.
     * Failing loudly here beats the alternative: with no runtime,
     * `gRuntime->currentThreadState()` is a silent null deref, and the
     * first symptom would be a corrupt-looking crash far from the
     * misuse.
     */
    static ThreadState &
    checkedThreadState()
    {
        if (Runtime::gRuntime == nullptr) {
            fatal("PinFrame: no live Runtime — construct a Runtime "
                  "before pinning handles");
        }
        ThreadState *state =
            Runtime::gRuntime->currentThreadStateOrNull();
        if (state == nullptr) {
            fatal("PinFrame: calling thread is not registered with the "
                  "runtime — create a ThreadRegistration for it first");
        }
        return *state;
    }

    uint64_t *slots_;
    ThreadState &state_;
};

/**
 * Declare a pin frame of n slots in the current scope. n must be a
 * compile-time constant, exactly like the statically sized pin sets the
 * compiler emits.
 */
#define ALASKA_PIN_FRAME(name, n)                                         \
    uint64_t name##_slots[n];                                             \
    ::alaska::PinFrame name(name##_slots, n)

// NOTE: the one-slot RAII pin that used to live here (Pinned<T>) was
// replaced by alaska::pinned<T> in api/access.h, which is additionally
// safe against concurrent relocation campaigns — a stack pin alone is
// invisible to campaigns, which check HTE pin counts. Keeping a
// case-only sibling of the safe guard invited silent misuse.

/**
 * Atomic pin-count pinning — the naive strategy the paper's design
 * section argues against (contention under high pin rates). Present only
 * so the ablation benchmark can measure the difference; requires the
 * runtime to be in PinMode::AtomicPins.
 */
class AtomicPin
{
  public:
    explicit AtomicPin(const void *maybe_handle)
    {
        const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
        if (isHandle(v)) {
            entry_ = &Runtime::gRuntime->table().entry(handleId(v));
            entry_->state.fetch_add(HandleTableEntry::pinCountOne,
                                    std::memory_order_acq_rel);
        }
        raw_ = translate(maybe_handle);
    }

    ~AtomicPin()
    {
        if (entry_) {
            entry_->state.fetch_sub(HandleTableEntry::pinCountOne,
                                    std::memory_order_acq_rel);
        }
    }

    void *get() const { return raw_; }

  private:
    HandleTableEntry *entry_ = nullptr;
    void *raw_ = nullptr;
};

} // namespace alaska

#endif // ALASKA_CORE_PIN_H
