#include "core/malloc_service.h"

#include <malloc.h>

#include <cstdlib>

#include "core/runtime.h"

namespace alaska
{

void
MallocService::init(Runtime &runtime)
{
    (void)runtime;
}

void
MallocService::deinit()
{
}

void *
MallocService::alloc(uint32_t id, size_t size)
{
    (void)id;
    void *p = std::malloc(size ? size : 1);
    if (p) {
        const size_t usable = ::malloc_usable_size(p);
        const size_t now =
            active_.fetch_add(usable, std::memory_order_relaxed) + usable;
        size_t peak = peak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
        }
    }
    return p;
}

void
MallocService::free(uint32_t id, void *ptr)
{
    (void)id;
    if (!ptr)
        return;
    active_.fetch_sub(::malloc_usable_size(ptr), std::memory_order_relaxed);
    std::free(ptr);
}

size_t
MallocService::usableSize(const void *ptr) const
{
    return ::malloc_usable_size(const_cast<void *>(ptr));
}

size_t
MallocService::heapExtent() const
{
    // malloc cannot return interior pages; its extent is its peak.
    return peak_.load(std::memory_order_relaxed);
}

size_t
MallocService::activeBytes() const
{
    return active_.load(std::memory_order_relaxed);
}

} // namespace alaska
