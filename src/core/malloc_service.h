/**
 * @file
 * The "no service" configuration of the paper's evaluation (§5.4):
 * backing memory comes straight from libc malloc. Used to measure the
 * pure cost of translation + pin tracking (Figures 7 and 8) without any
 * mobility-exploiting service in the loop.
 */

#ifndef ALASKA_CORE_MALLOC_SERVICE_H
#define ALASKA_CORE_MALLOC_SERVICE_H

#include <atomic>

#include "core/service.h"

namespace alaska
{

/** malloc-backed service; objects never move. */
class MallocService : public Service
{
  public:
    void init(Runtime &runtime) override;
    void deinit() override;

    void *alloc(uint32_t id, size_t size) override;
    void free(uint32_t id, void *ptr) override;

    size_t usableSize(const void *ptr) const override;
    size_t heapExtent() const override;
    size_t activeBytes() const override;
    const char *name() const override { return "malloc"; }

  private:
    std::atomic<size_t> active_{0};
    std::atomic<size_t> peak_{0};
};

} // namespace alaska

#endif // ALASKA_CORE_MALLOC_SERVICE_H
