/**
 * @file
 * The Alaska core runtime (paper §4.2): handle allocation, pin tracking,
 * and stop-the-world barriers, with backing memory delegated to a
 * pluggable Service.
 *
 * One Runtime may be live at a time (the translation fast path goes
 * through process-global state, mirroring the paper's fixed-address
 * handle table). Tests construct and destroy runtimes sequentially.
 */

#ifndef ALASKA_CORE_RUNTIME_H
#define ALASKA_CORE_RUNTIME_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/handle.h"
#include "core/handle_table.h"
#include "core/service.h"
#include "core/thread_state.h"
#include "telemetry/telemetry.h"

namespace alaska
{

/**
 * Which translation idiom mutator-side accessors must use right now.
 *
 * The raw surface has two parallel idioms — plain translate() (safe
 * between safepoints while only stop-the-world defrag runs) and
 * translateScoped() inside a ConcurrentAccessScope (safe against
 * background relocation campaigns). The typed api layer (src/api) and
 * any other mode-aware caller pick between them through
 * Runtime::translationDiscipline() instead of hard-coding one.
 */
enum class TranslationDiscipline
{
    /**
     * Only stop-the-world relocation can occur: plain translate() is
     * safe until the next safepoint poll, and pin frames alone make a
     * translation survive barriers.
     */
    Direct,
    /**
     * Concurrent relocation campaigns are possible: accessors must
     * bracket operations in a ConcurrentAccessScope (or hold an atomic
     * pin via pinned<T>) so the campaign's grace periods cover their
     * cached translations and in-flight moves are aborted rather than
     * raced.
     */
    Scoped,
};

/** Pin tracking strategy; AtomicPins exists only for the ablation. */
enum class PinMode
{
    /** Paper default: private per-frame pin sets, no atomics. */
    StackPinSets,
    /** Naive scheme the paper argues against: atomic per-HTE counts. */
    AtomicPins,
};

/** Configuration for a Runtime. */
struct RuntimeConfig
{
    /** Handle table capacity (entries). */
    uint32_t tableCapacity = 1U << 22;
    /** Pin tracking mode. */
    PinMode pinMode = PinMode::StackPinSets;
};

/**
 * The set of handles found pinned during a barrier.
 *
 * Backed by a bitmap sized from the handle-table watermark.
 */
class PinnedSet
{
  public:
    PinnedSet() = default;
    explicit PinnedSet(uint32_t watermark)
        : bits_((watermark + 63) / 64, 0), limit_(watermark)
    {}

    void
    add(uint32_t id)
    {
        if (id < limit_)
            bits_[id >> 6] |= (1ULL << (id & 63));
    }

    bool
    contains(uint32_t id) const
    {
        if (id >= limit_)
            return false;
        return bits_[id >> 6] & (1ULL << (id & 63));
    }

    /** Number of pinned handles. */
    size_t count() const;

  private:
    std::vector<uint64_t> bits_;
    uint32_t limit_ = 0;
};

/** Aggregate runtime statistics. */
struct RuntimeStats
{
    uint64_t hallocs = 0;
    uint64_t hfrees = 0;
    uint64_t hreallocs = 0;
    uint64_t barriers = 0;
    uint64_t faults = 0;
};

class Runtime;

/**
 * RAII registration of the current thread with a runtime. Must be alive
 * for the whole period the thread executes managed code.
 */
class ThreadRegistration
{
  public:
    explicit ThreadRegistration(Runtime &runtime);
    ~ThreadRegistration();

    ThreadRegistration(const ThreadRegistration &) = delete;
    ThreadRegistration &operator=(const ThreadRegistration &) = delete;

  private:
    Runtime &runtime_;
    ThreadState *state_;
};

/** The core runtime. */
class Runtime
{
  public:
    explicit Runtime(RuntimeConfig config = {});
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** The currently live runtime, or nullptr. */
    static Runtime *current();

    // --- service management ---------------------------------------------
    /**
     * Attach the backing-memory service. Must happen before the first
     * halloc. The runtime does not take ownership, but it calls the
     * service's deinit() from its own destructor — the service object
     * must therefore outlive the Runtime.
     */
    void attachService(Service *service);
    Service &service();

    // --- allocation API (the malloc face of §4.2) -----------------------
    /** Allocate size bytes behind a fresh handle. */
    void *halloc(size_t size);
    /** Zero-initialized variant (the calloc proxy). */
    void *hcalloc(size_t count, size_t size);
    /**
     * Resize an allocation. The handle value is unchanged — only the
     * backing memory moves, which is the whole point of handles.
     */
    void *hrealloc(void *handle, size_t size);
    /** Free an allocation made by halloc. */
    void hfree(void *handle);

    /** Size requested for a live handle at halloc/hrealloc time. */
    size_t usableSize(void *handle) const;

    // --- handle ID allocation --------------------------------------------
    /**
     * Allocate a handle table entry for the calling thread. Threads
     * registered via ThreadRegistration go through their magazine (see
     * ThreadState): steady-state calls touch no shared state and refill
     * in batches from the table's free-list shards. Unregistered
     * threads fall back to the table's sharded allocate().
     */
    uint32_t allocateHandleId();

    /** Release a handle ID allocated by allocateHandleId(). */
    void releaseHandleId(uint32_t id);

    // --- handle table ----------------------------------------------------
    HandleTable &table() { return table_; }
    const HandleTable &table() const { return table_; }

    // --- threads and barriers --------------------------------------------
    /**
     * Execute fn as a stop-the-world barrier (paper §4.1.3): waits for
     * every registered thread to reach a safepoint (or be in external
     * code), unifies all pin sets, and runs fn with the world stopped.
     * fn may move any object whose handle is not in the PinnedSet by
     * updating its HTE.
     */
    void barrier(const std::function<void(const PinnedSet &)> &fn);

    /** True while a barrier is pending or in progress. */
    static bool
    barrierPending()
    {
        return gBarrierPending.load(std::memory_order_relaxed);
    }

    /** Park the calling thread until the current barrier completes. */
    void park();

    /**
     * Bracket a call into external (untransformed, possibly blocking)
     * code. While in external mode the thread's pin sets are frozen and
     * barriers proceed without it.
     */
    void enterExternal();
    void leaveExternal();

    /** The calling thread's state; thread must be registered. */
    ThreadState &currentThreadState();

    /** The calling thread's state, or nullptr if unregistered. */
    ThreadState *currentThreadStateOrNull();

    // --- concurrent relocation (§7) ---------------------------------------
    /**
     * True while any concurrent-relocation campaign is in flight.
     * Mutator translation must go through the mark-aware path (see
     * services/concurrent_reloc.h) while this holds; checking the flag
     * is a single uncontended atomic load when no campaign runs. The
     * seq_cst order pairs with the accessEpoch advance in
     * ConcurrentAccessScope (see ThreadState::accessEpoch).
     */
    static bool
    concurrentRelocActive()
    {
        return gConcurrentRelocCampaigns.load(std::memory_order_seq_cst) !=
               0;
    }

    /**
     * Announce that concurrent (non-stop-the-world) relocation may run
     * until the matching retireConcurrentDefrag(). The
     * ConcurrentRelocDaemon declares for its lifetime whenever its
     * controller mode allows campaigns, and every relocation campaign
     * declares for its own duration; code driving
     * AnchorageService::relocateCampaign by hand should declare too,
     * *before* mutators start issuing operations — accessors that
     * sample translationDiscipline() mid-operation are protected by the
     * campaign's quiescence wait only if the discipline was already
     * Scoped when their operation began. Declarations nest.
     */
    static void
    declareConcurrentDefrag()
    {
        gConcurrentDefragDeclared.fetch_add(1, std::memory_order_seq_cst);
    }

    /** Retire one declareConcurrentDefrag() declaration. */
    static void
    retireConcurrentDefrag()
    {
        gConcurrentDefragDeclared.fetch_sub(1, std::memory_order_seq_cst);
    }

    /**
     * The translation idiom mutator accessors must use right now: the
     * single mode accessor shared by the typed api layer and by any
     * raw-API caller that wants to pick the idiom dynamically. Scoped
     * while a concurrent-defrag declaration is outstanding (daemons
     * declare for their lifetime, campaigns for their duration);
     * Direct otherwise. One uncontended relaxed load on the fast path.
     */
    static TranslationDiscipline
    translationDiscipline()
    {
        return gConcurrentDefragDeclared.load(std::memory_order_relaxed) !=
                       0
                   ? TranslationDiscipline::Scoped
                   : TranslationDiscipline::Direct;
    }

    /**
     * Advance the global campaign epoch and return the new value. A
     * relocation campaign advances the epoch at each batch boundary and
     * then calls waitForGrace() on the returned value; mutators never
     * touch this counter (their published state is the per-thread
     * ThreadState::accessEpoch).
     */
    static uint64_t
    advanceCampaignEpoch()
    {
        return gCampaignEpoch.fetch_add(1, std::memory_order_seq_cst) + 1;
    }

    /** The current global campaign epoch. */
    static uint64_t
    campaignEpoch()
    {
        return gCampaignEpoch.load(std::memory_order_seq_cst);
    }

    /**
     * One grace period in flight, split into a snapshot (beginGrace)
     * and a non-blocking poll (graceElapsed) so a campaign can park a
     * reclaim batch and keep moving objects while the grace runs out in
     * the background — the pipelined form of waitForGrace(). Opaque:
     * create via beginGrace(), poll via graceElapsed().
     */
    struct GraceTicket
    {
        uint64_t epoch = 0;
        /** gCampaignEpoch sampled before the snapshot; certified into
         *  lastGraceEpoch_ once the snapshot drains. */
        uint64_t horizon = 0;
        /** Threads caught mid-scope (odd accessEpoch) at the snapshot,
         *  with the epoch each published then. Compared by identity
         *  only — a pointer here is never dereferenced after the
         *  thread unregisters. */
        std::vector<std::pair<const ThreadState *, uint64_t>> busy;
        bool done = false;
    };

    /**
     * Snapshot the start of a grace period for @p epoch (a value
     * returned by advanceCampaignEpoch()): records every registered
     * thread caught inside a ConcurrentAccessScope, excluding the
     * calling thread (a mover waiting on its own scope would deadlock,
     * and its own translations are not at risk from its own moves).
     * Never blocks. A ticket already satisfied by the lastGraceEpoch_
     * high-water mark (or an empty snapshot) comes back done.
     */
    GraceTicket beginGrace(uint64_t epoch);

    /**
     * Poll a ticket: true once every snapshotted thread has left the
     * scope it was in at beginGrace() — at which point every
     * translation obtained under a scope open at the snapshot is dead.
     * Never blocks, never hangs on exited threads: each snapshotted
     * thread is re-found by identity, and one that unregistered
     * mid-grace is treated as drained (scopes cannot outlive
     * registration). Idempotent after it first returns true.
     */
    bool graceElapsed(GraceTicket &ticket);

    /**
     * Wait (without stopping anything) for one grace period: until
     * every registered thread has left the ConcurrentAccessScope it was
     * inside when the wait began, if any. On return, every translation
     * obtained under a scope that was open at the call is dead — which
     * is what lets a campaign free a *committed* relocation source: a
     * reader whose scope predates the commit CAS may still hold the
     * stale source translation, so the source parks on a limbo list
     * and is only freed after one grace, while the scope's cached
     * translations stay valid for the scope's whole lifetime with zero
     * shared-memory RMWs on the deref path. Equivalent to beginGrace()
     * plus a graceElapsed() sleep-poll loop.
     *
     * @param epoch a value returned by advanceCampaignEpoch(); waits
     * already satisfied for a later epoch return immediately (the
     * per-runtime lastGraceEpoch_ high-water mark).
     *
     * Scopes are one application operation long and never span a
     * safepoint poll, so the wait is short and mutators never block.
     */
    void waitForGrace(uint64_t epoch);

    /**
     * Advance the campaign epoch and wait one full grace period.
     * A campaign calls this after raising the active flag: scopes that
     * began before the flag was visible translate mark-unaware, so the
     * mover must let them drain before marking its first object.
     */
    void quiesceConcurrentAccessors();

    /** Pin mode (see PinMode). */
    PinMode pinMode() const { return config_.pinMode; }

    // --- handle faults (§7) ----------------------------------------------
    /**
     * Slow path taken by checked translation when an HTE is Invalid.
     * Delegates to the service's fault() hook.
     * @return the fresh base pointer of the object.
     */
    void *handleFault(uint32_t id);

    /** Runtime statistics snapshot. */
    RuntimeStats stats() const;

    /**
     * Aggregate of the process-wide telemetry counters and histograms
     * (src/telemetry/). Safe to take from any thread while mutators,
     * campaigns and barriers run; see docs/OBSERVABILITY.md.
     */
    telemetry::Snapshot telemetrySnapshot() const;

    /**
     * Export every buffered trace event (telemetry::enableTracing)
     * as Chrome trace-event JSON, viewable at ui.perfetto.dev.
     * @return false on I/O error.
     */
    bool dumpTrace(const char *path) const;

    /** Number of registered threads. */
    size_t threadCount() const;

    // Fast-path globals (see translate.h). Treat as private.
    static HandleTableEntry *gTableBase;
    static std::atomic<bool> gBarrierPending;
    static Runtime *gRuntime;
    /** Count of in-flight concurrent-relocation campaigns. */
    static std::atomic<uint32_t> gConcurrentRelocCampaigns;
    /** Outstanding declareConcurrentDefrag() declarations. */
    static std::atomic<uint32_t> gConcurrentDefragDeclared;
    /** Global campaign epoch (see advanceCampaignEpoch). */
    static std::atomic<uint64_t> gCampaignEpoch;

  private:
    friend class ThreadRegistration;

    ThreadState *registerThread();
    void unregisterThread(ThreadState *state);

    /** Collect the pinned set from all threads' pin frames. */
    PinnedSet unifyPinSets();

    RuntimeConfig config_;
    HandleTable table_;
    Service *service_ = nullptr;

    mutable std::mutex threadMutex_;
    std::condition_variable threadCv_;
    std::vector<std::unique_ptr<ThreadState>> threads_;

    /** Serializes whole barriers against each other. */
    std::mutex barrierMutex_;

    /** Raise the completed-grace high-water mark to @p horizon. */
    void publishGraceHorizon(uint64_t horizon);

    /**
     * Highest campaign epoch for which a grace period has completed;
     * waitForGrace() on an epoch at or below it returns immediately.
     */
    std::atomic<uint64_t> lastGraceEpoch_{0};

    std::atomic<uint64_t> nHallocs_{0};
    std::atomic<uint64_t> nHfrees_{0};
    std::atomic<uint64_t> nHreallocs_{0};
    std::atomic<uint64_t> nBarriers_{0};
    std::atomic<uint64_t> nFaults_{0};
};

} // namespace alaska

#endif // ALASKA_CORE_RUNTIME_H
