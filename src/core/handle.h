/**
 * @file
 * The Alaska handle bit representation (paper §3.3, Figure 4).
 *
 * A handle is a 64-bit value that coexists with raw pointers in the same
 * variables:
 *
 *   bit  63     : 1 => handle, 0 => raw pointer
 *   bits 62..32 : handle ID (index into the handle table), 31 bits
 *   bits 31..0  : byte offset into the object, 32 bits
 *
 * Consequences mirrored from the paper:
 *  - at most 2^31 live handles;
 *  - objects are capped at 4 GiB (larger regions are better served by
 *    paging anyway);
 *  - pointer arithmetic on a handle is plain integer arithmetic on the
 *    offset field, so transformed code needs no special cases as long as
 *    it stays in bounds (the paper's §3.2 assumption);
 *  - dereferencing an untranslated handle faults, since the canonical
 *    x86-64 address space excludes these values.
 */

#ifndef ALASKA_CORE_HANDLE_H
#define ALASKA_CORE_HANDLE_H

#include <cstddef>
#include <cstdint>

namespace alaska
{

/** Number of bits in a handle ID. */
inline constexpr int handleIdBits = 31;
/** Number of bits in the intra-object offset. */
inline constexpr int handleOffsetBits = 32;
/** The tag bit distinguishing handles from raw pointers. */
inline constexpr uint64_t handleTagBit = 1ULL << 63;
/** Exclusive upper bound on handle IDs. */
inline constexpr uint32_t maxHandleId = 1U << handleIdBits;
/** Maximum object size representable by the offset field. */
inline constexpr uint64_t maxObjectSize = 1ULL << handleOffsetBits;

/**
 * Largest element count a typed span may have while its byte size
 * stays inside the offset field — the single bound behind every typed
 * allocation guard (hbox, allocator) and allocator<T>::max_size().
 */
constexpr uint64_t
maxObjectElements(std::size_t elementSize)
{
    return maxObjectSize / elementSize;
}

/** True iff the value is a handle (top bit set). */
constexpr bool
isHandle(uint64_t value)
{
    return static_cast<int64_t>(value) < 0;
}

/** True iff the pointer-typed value is a handle. */
inline bool
isHandle(const void *value)
{
    return isHandle(reinterpret_cast<uint64_t>(value));
}

/** Construct a handle value from an ID and byte offset. */
constexpr uint64_t
makeHandle(uint32_t id, uint32_t offset = 0)
{
    return handleTagBit | (static_cast<uint64_t>(id) << 32) | offset;
}

/** Extract the handle ID. Only meaningful if isHandle(value). */
constexpr uint32_t
handleId(uint64_t value)
{
    return static_cast<uint32_t>(value >> 32) & (maxHandleId - 1);
}

/** Extract the intra-object byte offset. */
constexpr uint32_t
handleOffset(uint64_t value)
{
    return static_cast<uint32_t>(value);
}

static_assert(isHandle(makeHandle(0, 0)));
static_assert(!isHandle(UINT64_C(0x00007fffffffffff)));
static_assert(handleId(makeHandle(12345, 678)) == 12345);
static_assert(handleOffset(makeHandle(12345, 678)) == 678);
static_assert(handleId(makeHandle(maxHandleId - 1, 0xffffffff)) ==
              maxHandleId - 1);

} // namespace alaska

#endif // ALASKA_CORE_HANDLE_H
