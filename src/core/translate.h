/**
 * @file
 * The handle translation fast path (paper §3.3, Figure 5) and the
 * safepoint poll.
 *
 * translate() compiles to the paper's shape on x64: a sign test and
 * branch, a shift+mask to extract the handle ID, a 32-bit truncation of
 * the offset, one load from the handle table, and an add. The branch is
 * the "is this a handle at all?" check that lets handles and raw
 * pointers coexist in the same variables.
 */

#ifndef ALASKA_CORE_TRANSLATE_H
#define ALASKA_CORE_TRANSLATE_H

#include "core/handle.h"
#include "core/handle_table.h"
#include "core/runtime.h"
#include "telemetry/telemetry.h"

namespace alaska
{

/**
 * Translate a maybe-handle to a raw pointer.
 *
 * If the value is a raw pointer it is returned unchanged; if it is a
 * handle, the backing pointer is loaded from the handle table and the
 * offset applied. The caller is responsible for having pinned the handle
 * first (see pin.h) if the translation outlives the next safepoint.
 *
 * At ALASKA_TELEMETRY_LEVEL >= 2 every handle hit bumps the
 * translate_fast counter; at the default level the body keeps the
 * paper's two-instruction shape untouched.
 */
inline void *
translate(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (static_cast<int64_t>(v) >= 0)
        return const_cast<void *>(maybe_handle);
    telemetry::countHot(telemetry::Counter::TranslateFast);
    const HandleTableEntry &e =
        Runtime::gTableBase[(v >> 32) & (maxHandleId - 1)];
    return static_cast<char *>(e.ptr.load(std::memory_order_relaxed)) +
           static_cast<uint32_t>(v);
}

/**
 * Translation with the handle-fault check enabled (paper §7).
 *
 * If the entry has been marked Invalid by a service (e.g. the object was
 * swapped out), control traps into the runtime, which asks the service
 * to restore the object. The paper measures this extra check at ~1-2%.
 */
void *translateChecked(const void *maybe_handle);

/**
 * Safepoint poll (paper §4.1.3).
 *
 * The compiler places these at loop back edges, function entries, and
 * before external calls. The fast path is one relaxed load and a
 * predictable branch — our cooperative stand-in for the paper's
 * NOP-patched LLVM patch points.
 */
inline void
poll()
{
    if (__builtin_expect(Runtime::barrierPending(), 0))
        Runtime::gRuntime->park();
}

} // namespace alaska

#endif // ALASKA_CORE_TRANSLATE_H
