/**
 * @file
 * The extensible service interface (paper §3.5, §4.2.2).
 *
 * Alaska's core runtime does not manage backing memory itself; it defers
 * to a pluggable service through this interface. The paper describes the
 * interface as "eight callback functions: two lifetime management
 * functions (init/deinit), two backing memory management functions
 * (alloc/free), and four metadata functions"; they are reproduced here
 * one-for-one, plus the optional handle-fault hook discussed in §7.
 */

#ifndef ALASKA_CORE_SERVICE_H
#define ALASKA_CORE_SERVICE_H

#include <cstddef>
#include <cstdint>

namespace alaska
{

class Runtime;

/** Pluggable backing-memory manager. */
class Service
{
  public:
    virtual ~Service() = default;

    // --- lifetime management -------------------------------------------
    /** Called once when the service is attached to a runtime. */
    virtual void init(Runtime &runtime) = 0;
    /** Called once when the runtime shuts down or detaches the service. */
    virtual void deinit() = 0;

    // --- backing memory management --------------------------------------
    /**
     * Provide backing memory for a new object.
     * @param id the handle ID the object will live behind
     * @param size requested object size in bytes
     */
    virtual void *alloc(uint32_t id, size_t size) = 0;
    /** Release the backing memory of a freed object. */
    virtual void free(uint32_t id, void *ptr) = 0;

    // --- metadata --------------------------------------------------------
    /** Usable size of an allocation made by this service. */
    virtual size_t usableSize(const void *ptr) const = 0;
    /** Total virtual extent of the service's heap, in bytes. */
    virtual size_t heapExtent() const = 0;
    /** Total bytes of live objects. */
    virtual size_t activeBytes() const = 0;
    /** Human-readable service name. */
    virtual const char *name() const = 0;

    // --- optional: handle faults (§7) -----------------------------------
    /**
     * Called by the checked translation path when an entry is marked
     * Invalid. The service must restore backing memory, update the HTE,
     * and return the new base pointer. Default: this service does not
     * support faulting.
     */
    virtual void *fault(uint32_t id);
};

} // namespace alaska

#endif // ALASKA_CORE_SERVICE_H
