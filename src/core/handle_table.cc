#include "core/handle_table.h"

#include <sys/mman.h>

#include <cstring>

#include "base/logging.h"

namespace alaska
{

HandleTable::HandleTable(uint32_t capacity) : capacity_(capacity)
{
    ALASKA_ASSERT(capacity > 0 && capacity <= maxHandleId,
                  "capacity %u out of range", capacity);
    const size_t bytes = static_cast<size_t>(capacity) *
                         sizeof(HandleTableEntry);
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED)
        fatal("handle table: cannot reserve %zu bytes", bytes);
    table_ = static_cast<HandleTableEntry *>(mem);
    // Anonymous mappings are zero-filled, which is exactly the initial
    // entry state we need (ptr == nullptr, state == 0).
}

HandleTable::~HandleTable()
{
    if (table_) {
        ::munmap(table_,
                 static_cast<size_t>(capacity_) * sizeof(HandleTableEntry));
    }
}

uint32_t
HandleTable::allocate()
{
    {
        std::lock_guard<std::mutex> guard(freeMutex_);
        if (!freeList_.empty()) {
            const uint32_t id = freeList_.back();
            freeList_.pop_back();
            auto &e = table_[id];
            e.state.store(HandleTableEntry::Allocated,
                          std::memory_order_relaxed);
            live_.fetch_add(1, std::memory_order_relaxed);
            return id;
        }
    }
    const uint32_t id = bump_.fetch_add(1, std::memory_order_relaxed);
    if (id >= capacity_)
        fatal("handle table exhausted (%u entries)", capacity_);
    auto &e = table_[id];
    e.state.store(HandleTableEntry::Allocated, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
HandleTable::release(uint32_t id)
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    auto &e = table_[id];
    ALASKA_ASSERT(e.allocated(), "double free of handle %u", id);
    e.ptr.store(nullptr, std::memory_order_relaxed);
    e.size = 0;
    e.state.store(0, std::memory_order_relaxed);
    live_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(freeMutex_);
    freeList_.push_back(id);
}

HandleTableEntry &
HandleTable::entry(uint32_t id)
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    return table_[id];
}

const HandleTableEntry &
HandleTable::entry(uint32_t id) const
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    return table_[id];
}

uint32_t
HandleTable::watermark() const
{
    return bump_.load(std::memory_order_relaxed);
}

uint32_t
HandleTable::liveCount() const
{
    return live_.load(std::memory_order_relaxed);
}

} // namespace alaska
