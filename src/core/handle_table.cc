#include "core/handle_table.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "telemetry/telemetry.h"

namespace alaska
{

namespace
{

/**
 * Thread ordinals: each thread gets one on first contact with any
 * handle table (or any other shard-keyed subsystem). A round-robin
 * counter spreads threads perfectly across shards, unlike hashing the
 * (often sequential) std::thread::id values, which can collide badly.
 */
std::atomic<uint32_t> gNextThreadOrdinal{0};
thread_local uint32_t tlsThreadOrdinal = UINT32_MAX;

} // anonymous namespace

uint32_t
HandleTable::threadOrdinal()
{
    if (tlsThreadOrdinal == UINT32_MAX) {
        tlsThreadOrdinal =
            gNextThreadOrdinal.fetch_add(1, std::memory_order_relaxed);
    }
    return tlsThreadOrdinal;
}

HandleTable::HandleTable(uint32_t capacity) : capacity_(capacity)
{
    static_assert((numShards & (numShards - 1)) == 0,
                  "numShards must be a power of two");
    ALASKA_ASSERT(capacity > 0 && capacity <= maxHandleId,
                  "capacity %u out of range", capacity);
    const size_t bytes = static_cast<size_t>(capacity) *
                         sizeof(HandleTableEntry);
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED)
        fatal("handle table: cannot reserve %zu bytes", bytes);
    table_ = static_cast<HandleTableEntry *>(mem);
    // Anonymous mappings are zero-filled, which is exactly the initial
    // entry state we need (ptr == nullptr, state == 0).
}

HandleTable::~HandleTable()
{
    if (table_) {
        ::munmap(table_,
                 static_cast<size_t>(capacity_) * sizeof(HandleTableEntry));
    }
}

HandleTable::Shard &
HandleTable::homeShard()
{
    return shards_[threadOrdinal() & (numShards - 1)];
}

uint32_t
HandleTable::bumpBatch(uint32_t *out, uint32_t want)
{
    uint32_t cur = bump_.load(std::memory_order_relaxed);
    for (;;) {
        if (cur >= capacity_)
            return 0;
        const uint32_t take = std::min(want, capacity_ - cur);
        if (bump_.compare_exchange_weak(cur, cur + take,
                                        std::memory_order_relaxed)) {
            for (uint32_t i = 0; i < take; i++)
                out[i] = cur + i;
            return take;
        }
    }
}

uint32_t
HandleTable::stealBatch(uint32_t *out, uint32_t want)
{
    uint32_t n = 0;
    for (uint32_t s = 0; s < numShards && n < want; s++) {
        Shard &shard = shards_[s];
        std::lock_guard<std::mutex> guard(shard.mutex);
        while (n < want && !shard.freeList.empty()) {
            out[n++] = shard.freeList.back();
            shard.freeList.pop_back();
        }
    }
    if (n > 0)
        telemetry::count(telemetry::Counter::IdShardSteal);
    return n;
}

uint32_t
HandleTable::allocate()
{
    uint32_t id;
    reserveBatch(&id, 1);
    activate(id);
    return id;
}

void
HandleTable::release(uint32_t id)
{
    deactivate(id);
    Shard &shard = homeShard();
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.freeList.push_back(id);
}

uint32_t
HandleTable::reserveBatch(uint32_t *out, uint32_t want)
{
    ALASKA_ASSERT(want > 0, "reserveBatch of zero IDs");
    uint32_t n = 0;
    {
        Shard &shard = homeShard();
        std::lock_guard<std::mutex> guard(shard.mutex);
        while (n < want && !shard.freeList.empty()) {
            out[n++] = shard.freeList.back();
            shard.freeList.pop_back();
        }
    }
    if (n < want)
        n += bumpBatch(out + n, want - n);
    if (n == 0)
        n = stealBatch(out, want);
    if (n == 0)
        fatal("handle table exhausted (%u entries)", capacity_);
    return n;
}

void
HandleTable::unreserveBatch(const uint32_t *ids, uint32_t count)
{
    if (count == 0)
        return;
    Shard &shard = homeShard();
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.freeList.insert(shard.freeList.end(), ids, ids + count);
}

void
HandleTable::activate(uint32_t id)
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    auto &e = table_[id];
    ALASKA_ASSERT(!e.allocated(), "activate of live handle %u", id);
    // fetch_or, not store: scoped concurrent pins may already be
    // counted in the state word (see deactivate).
    e.state.fetch_or(HandleTableEntry::Allocated,
                     std::memory_order_relaxed);
    homeShard().liveDelta.fetch_add(1, std::memory_order_relaxed);
}

void
HandleTable::deactivate(uint32_t id)
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    auto &e = table_[id];
    ALASKA_ASSERT(e.allocated(), "double free of handle %u", id);
    e.ptr.store(nullptr, std::memory_order_relaxed);
    e.size = 0;
    // Clear only the flag bits: a racing accessor may hold a scoped
    // concurrent pin on this entry and will unpin (fetch_sub) after we
    // ran — wiping the whole word would make that unpin underflow.
    e.state.fetch_and(~(HandleTableEntry::Allocated |
                        HandleTableEntry::Invalid),
                      std::memory_order_relaxed);
    homeShard().liveDelta.fetch_sub(1, std::memory_order_relaxed);
}

HandleTableEntry &
HandleTable::entry(uint32_t id)
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    return table_[id];
}

const HandleTableEntry &
HandleTable::entry(uint32_t id) const
{
    ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
    return table_[id];
}

uint32_t
HandleTable::watermark() const
{
    return bump_.load(std::memory_order_relaxed);
}

uint32_t
HandleTable::liveCount() const
{
    int64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.liveDelta.load(std::memory_order_relaxed);
    return total < 0 ? 0 : static_cast<uint32_t>(total);
}

} // namespace alaska
