#include "core/runtime.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "base/logging.h"
#include "base/timer.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace alaska
{

HandleTableEntry *Runtime::gTableBase = nullptr;
std::atomic<bool> Runtime::gBarrierPending{false};
Runtime *Runtime::gRuntime = nullptr;
std::atomic<uint32_t> Runtime::gConcurrentRelocCampaigns{0};
std::atomic<uint32_t> Runtime::gConcurrentDefragDeclared{0};
std::atomic<uint64_t> Runtime::gCampaignEpoch{0};

namespace
{
thread_local ThreadState *tlsState = nullptr;
} // anonymous namespace

size_t
PinnedSet::count() const
{
    size_t n = 0;
    for (uint64_t word : bits_)
        n += static_cast<size_t>(__builtin_popcountll(word));
    return n;
}

Runtime::Runtime(RuntimeConfig config)
    : config_(config), table_(config.tableCapacity)
{
    ALASKA_ASSERT(gRuntime == nullptr,
                  "only one Runtime may be live at a time");
    gRuntime = this;
    gTableBase = table_.base();
    gBarrierPending.store(false, std::memory_order_relaxed);
}

Runtime::~Runtime()
{
    {
        std::lock_guard<std::mutex> guard(threadMutex_);
        ALASKA_ASSERT(threads_.empty(),
                      "%zu threads still registered at runtime shutdown",
                      threads_.size());
    }
    if (service_)
        service_->deinit();
    gTableBase = nullptr;
    gRuntime = nullptr;
}

Runtime *
Runtime::current()
{
    return gRuntime;
}

void
Runtime::attachService(Service *service)
{
    ALASKA_ASSERT(service_ == nullptr, "a service is already attached");
    service_ = service;
    service_->init(*this);
}

Service &
Runtime::service()
{
    ALASKA_ASSERT(service_ != nullptr, "no service attached");
    return *service_;
}

uint32_t
Runtime::allocateHandleId()
{
    ThreadState *ts = tlsState;
    if (ts == nullptr)
        return table_.allocate();
    HandleMagazine &mag = ts->magazine;
    if (mag.empty()) {
        mag.count = table_.reserveBatch(mag.ids, HandleMagazine::capacity);
        telemetry::count(telemetry::Counter::MagazineRefill);
    }
    const uint32_t id = mag.ids[--mag.count];
    table_.activate(id);
    return id;
}

void
Runtime::releaseHandleId(uint32_t id)
{
    ThreadState *ts = tlsState;
    if (ts == nullptr) {
        table_.release(id);
        return;
    }
    HandleMagazine &mag = ts->magazine;
    table_.deactivate(id);
    if (mag.full()) {
        // Flush the older half, keeping hysteresis: an allocate/release
        // pattern oscillating at the boundary stays off the shards.
        constexpr uint32_t flush = HandleMagazine::capacity / 2;
        table_.unreserveBatch(mag.ids, flush);
        telemetry::count(telemetry::Counter::MagazineSpill);
        std::memmove(mag.ids, mag.ids + flush,
                     (HandleMagazine::capacity - flush) * sizeof(uint32_t));
        mag.count -= flush;
    }
    mag.ids[mag.count++] = id;
}

void *
Runtime::halloc(size_t size)
{
    if (size == 0)
        size = 1;
    if (size >= maxObjectSize)
        fatal("halloc: object of %zu bytes exceeds the 4 GiB handle "
              "offset range; use paging for such regions", size);
    const uint32_t id = allocateHandleId();
    void *backing = service().alloc(id, size);
    ALASKA_ASSERT(backing != nullptr, "service %s failed to allocate %zu",
                  service().name(), size);
    auto &e = table_.entry(id);
    e.size = static_cast<uint32_t>(size);
    e.ptr.store(backing, std::memory_order_release);
    nHallocs_.fetch_add(1, std::memory_order_relaxed);
    telemetry::countHot(telemetry::Counter::Halloc);
    return reinterpret_cast<void *>(makeHandle(id, 0));
}

void *
Runtime::hcalloc(size_t count, size_t size)
{
    const size_t bytes = count * size;
    void *h = halloc(bytes);
    auto &e = table_.entry(handleId(reinterpret_cast<uint64_t>(h)));
    std::memset(e.ptr.load(std::memory_order_relaxed), 0, bytes ? bytes : 1);
    return h;
}

void *
Runtime::hrealloc(void *handle, size_t size)
{
    if (handle == nullptr)
        return halloc(size);
    if (size == 0) {
        hfree(handle);
        return nullptr;
    }
    const uint64_t v = reinterpret_cast<uint64_t>(handle);
    if (!isHandle(v)) {
        // Raw pointer from untransformed code; fall through to libc.
        return std::realloc(handle, size);
    }
    ALASKA_ASSERT(handleOffset(v) == 0,
                  "hrealloc of an interior handle (offset %u)",
                  handleOffset(v));
    if (size >= maxObjectSize)
        fatal("hrealloc: %zu bytes exceeds the 4 GiB offset range", size);

    const uint32_t id = handleId(v);
    auto &e = table_.entry(id);
    ALASKA_ASSERT(e.allocated(), "hrealloc of freed handle %u", id);
    // Claim the backing pointer atomically, like hfree: a clear-the-mark
    // loop would only handle a relocation already in flight, while a
    // mover that marks *after* our load could still commit and free the
    // old block under us (double free + copy from freed memory). With
    // the exchange the entry briefly holds nullptr; a mover validating
    // its candidate skips it, and its commit CAS cannot succeed.
    void *old_ptr =
        reloc::unmarked(e.ptr.exchange(nullptr,
                                       std::memory_order_seq_cst));
    const size_t old_size = e.size;

    void *new_ptr = service().alloc(id, size);
    ALASKA_ASSERT(new_ptr != nullptr, "service %s failed to allocate %zu",
                  service().name(), size);
    std::memcpy(new_ptr, old_ptr, std::min(old_size, size));
    // The handle value is unchanged: movement is a single HTE update.
    e.size = static_cast<uint32_t>(size);
    e.ptr.store(new_ptr, std::memory_order_release);
    service().free(id, old_ptr);
    nHreallocs_.fetch_add(1, std::memory_order_relaxed);
    return handle;
}

void
Runtime::hfree(void *handle)
{
    if (handle == nullptr)
        return;
    const uint64_t v = reinterpret_cast<uint64_t>(handle);
    if (!isHandle(v)) {
        std::free(handle);
        return;
    }
    ALASKA_ASSERT(handleOffset(v) == 0,
                  "hfree of an interior handle (offset %u)",
                  handleOffset(v));
    const uint32_t id = handleId(v);
    auto &e = table_.entry(id);
    ALASKA_ASSERT(e.allocated(), "double hfree of handle %u", id);
    // Claim the backing pointer atomically. A plain load would race a
    // concurrent relocator: between the load and the service free the
    // mover could commit and free the old block itself (double free).
    // The exchange takes ownership — if the entry was mid-relocation
    // (mark bit set) the mover's commit CAS now fails and it discards
    // its copy, so freeing the unmarked pointer here is the only free.
    void *ptr = e.ptr.exchange(nullptr, std::memory_order_acq_rel);
    service().free(id, reloc::unmarked(ptr));
    releaseHandleId(id);
    nHfrees_.fetch_add(1, std::memory_order_relaxed);
    telemetry::countHot(telemetry::Counter::Hfree);
}

size_t
Runtime::usableSize(void *handle) const
{
    const uint64_t v = reinterpret_cast<uint64_t>(handle);
    if (!isHandle(v))
        return 0;
    return table_.entry(handleId(v)).size;
}

// --- threads --------------------------------------------------------------

ThreadRegistration::ThreadRegistration(Runtime &runtime) : runtime_(runtime)
{
    state_ = runtime_.registerThread();
    // If a barrier started before we registered, join it immediately.
    if (Runtime::barrierPending())
        runtime_.park();
}

ThreadRegistration::~ThreadRegistration()
{
    runtime_.unregisterThread(state_);
}

ThreadState *
Runtime::registerThread()
{
    ALASKA_ASSERT(tlsState == nullptr, "thread registered twice");
    auto state = std::make_unique<ThreadState>();
    ThreadState *raw = state.get();
    {
        std::lock_guard<std::mutex> guard(threadMutex_);
        threads_.push_back(std::move(state));
    }
    tlsState = raw;
    threadCv_.notify_all();
    return raw;
}

void
Runtime::unregisterThread(ThreadState *state)
{
    ALASKA_ASSERT(state->frames.empty(),
                  "thread exiting with %zu live pin frames",
                  state->frames.size());
    // Hand any magazine-cached IDs back to the table so they are not
    // stranded when the thread goes away.
    if (state->magazine.count > 0) {
        table_.unreserveBatch(state->magazine.ids, state->magazine.count);
        state->magazine.count = 0;
    }
    {
        std::lock_guard<std::mutex> guard(threadMutex_);
        for (auto it = threads_.begin(); it != threads_.end(); ++it) {
            if (it->get() == state) {
                threads_.erase(it);
                break;
            }
        }
    }
    tlsState = nullptr;
    threadCv_.notify_all();
}

ThreadState &
Runtime::currentThreadState()
{
    ALASKA_ASSERT(tlsState != nullptr,
                  "current thread is not registered with the runtime");
    return *tlsState;
}

ThreadState *
Runtime::currentThreadStateOrNull()
{
    return tlsState;
}

void
Runtime::publishGraceHorizon(uint64_t horizon)
{
    // Monotonic max under CAS: two concurrent waiters must not regress
    // each other's high-water.
    uint64_t prev = lastGraceEpoch_.load(std::memory_order_relaxed);
    while (prev < horizon &&
           !lastGraceEpoch_.compare_exchange_weak(
               prev, horizon, std::memory_order_acq_rel)) {
    }
}

Runtime::GraceTicket
Runtime::beginGrace(uint64_t epoch)
{
    GraceTicket ticket;
    ticket.epoch = epoch;
    // High-water fast path: a grace period that completed for a later
    // epoch also covers this one, so back-to-back batch waits in a
    // campaign pay one scan, not one per call site.
    if (lastGraceEpoch_.load(std::memory_order_acquire) >= epoch) {
        ticket.done = true;
        return ticket;
    }

    // The horizon this ticket will certify once the scan drains.
    // Sampled before the snapshot: scopes opened after this point are
    // not our problem (their translations postdate the caller's marks).
    ticket.horizon = gCampaignEpoch.load(std::memory_order_seq_cst);

    // Snapshot every thread caught mid-scope (odd accessEpoch). A
    // scope that begins after the snapshot saw the campaign flag (its
    // ctor reads the flag after advancing the epoch, both seq_cst) and
    // translates mark-aware, so only the snapshotted epochs need
    // draining.
    const ThreadState *self = tlsState;
    std::lock_guard<std::mutex> guard(threadMutex_);
    for (const auto &thread : threads_) {
        if (thread.get() == self)
            continue;
        const uint64_t seq =
            thread->accessEpoch.load(std::memory_order_seq_cst);
        if (seq & 1)
            ticket.busy.emplace_back(thread.get(), seq);
    }
    if (ticket.busy.empty()) {
        publishGraceHorizon(ticket.horizon);
        ticket.done = true;
    }
    return ticket;
}

bool
Runtime::graceElapsed(GraceTicket &ticket)
{
    if (ticket.done)
        return true;
    if (lastGraceEpoch_.load(std::memory_order_acquire) >= ticket.epoch) {
        ticket.done = true;
        return true;
    }
    {
        std::lock_guard<std::mutex> guard(threadMutex_);
        for (size_t i = ticket.busy.size(); i-- > 0;) {
            // Re-find the thread by identity: one that unregistered
            // mid-grace has drained by definition (scopes cannot
            // outlive registration), so an exited thread never hangs
            // the poll.
            bool still_busy = false;
            for (const auto &thread : threads_) {
                if (thread.get() == ticket.busy[i].first) {
                    still_busy =
                        thread->accessEpoch.load(
                            std::memory_order_seq_cst) ==
                        ticket.busy[i].second;
                    break;
                }
            }
            if (!still_busy)
                ticket.busy.erase(ticket.busy.begin() +
                                  static_cast<long>(i));
        }
    }
    if (!ticket.busy.empty())
        return false;
    publishGraceHorizon(ticket.horizon);
    ticket.done = true;
    return true;
}

void
Runtime::waitForGrace(uint64_t epoch)
{
    telemetry::count(telemetry::Counter::GraceWait);
    telemetry::TraceSpan span("grace_wait");
    GraceTicket ticket = beginGrace(epoch);
    while (!graceElapsed(ticket))
        std::this_thread::sleep_for(std::chrono::microseconds(20));
}

void
Runtime::quiesceConcurrentAccessors()
{
    waitForGrace(advanceCampaignEpoch());
}

size_t
Runtime::threadCount() const
{
    std::lock_guard<std::mutex> guard(threadMutex_);
    return threads_.size();
}

// --- barrier ----------------------------------------------------------------

void
Runtime::park()
{
    ThreadState &state = currentThreadState();
    std::unique_lock<std::mutex> lock(threadMutex_);
    state.mode.store(ThreadMode::Parked, std::memory_order_release);
    state.parks++;
    threadCv_.notify_all();
    threadCv_.wait(lock, [] { return !barrierPending(); });
    state.mode.store(ThreadMode::Managed, std::memory_order_release);
}

void
Runtime::enterExternal()
{
    ThreadState &state = currentThreadState();
    std::lock_guard<std::mutex> guard(threadMutex_);
    state.mode.store(ThreadMode::External, std::memory_order_release);
    threadCv_.notify_all();
}

void
Runtime::leaveExternal()
{
    ThreadState &state = currentThreadState();
    std::unique_lock<std::mutex> lock(threadMutex_);
    // Cannot resume mutating while a barrier is in progress.
    threadCv_.wait(lock, [] { return !barrierPending(); });
    state.mode.store(ThreadMode::Managed, std::memory_order_release);
}

PinnedSet
Runtime::unifyPinSets()
{
    PinnedSet pinned(table_.watermark());
    for (const auto &thread : threads_) {
        for (const auto &frame : thread->frames) {
            for (uint32_t i = 0; i < frame.count; i++) {
                const uint64_t v = frame.slots[i];
                if (isHandle(v))
                    pinned.add(handleId(v));
            }
        }
    }
    // Atomic pin counts are honored in every mode, not just the
    // AtomicPins ablation: ConcurrentPin and scoped concurrent
    // translation pin through the HTE state word, and a Hybrid-mode
    // stop-the-world pass must not move objects those accessors still
    // reference. The scan is one relaxed load per watermark entry,
    // inside an already stopped world.
    const uint32_t wm = table_.watermark();
    for (uint32_t id = 0; id < wm; id++) {
        if (table_.entry(id).atomicPinCount() > 0)
            pinned.add(id);
    }
    return pinned;
}

void
Runtime::barrier(const std::function<void(const PinnedSet &)> &fn)
{
    // Serialize whole barriers against each other.
    std::lock_guard<std::mutex> barrier_guard(barrierMutex_);
    telemetry::TraceSpan span("barrier");
    Stopwatch pause;
    gBarrierPending.store(true, std::memory_order_seq_cst);

    ThreadState *self = tlsState;
    std::unique_lock<std::mutex> lock(threadMutex_);
    threadCv_.wait(lock, [&] {
        for (const auto &thread : threads_) {
            if (thread.get() == self)
                continue;
            if (thread->mode.load(std::memory_order_acquire) ==
                ThreadMode::Managed) {
                return false;
            }
        }
        return true;
    });

    PinnedSet pinned = unifyPinSets();
    fn(pinned);
    nBarriers_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::Barrier);
    telemetry::record(telemetry::Hist::BarrierPauseNs, pause.elapsedNs());

    gBarrierPending.store(false, std::memory_order_seq_cst);
    lock.unlock();
    threadCv_.notify_all();
}

void *
Runtime::handleFault(uint32_t id)
{
    nFaults_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::HandleFault);
    return service().fault(id);
}

RuntimeStats
Runtime::stats() const
{
    RuntimeStats s;
    s.hallocs = nHallocs_.load(std::memory_order_relaxed);
    s.hfrees = nHfrees_.load(std::memory_order_relaxed);
    s.hreallocs = nHreallocs_.load(std::memory_order_relaxed);
    s.barriers = nBarriers_.load(std::memory_order_relaxed);
    s.faults = nFaults_.load(std::memory_order_relaxed);
    return s;
}

telemetry::Snapshot
Runtime::telemetrySnapshot() const
{
    return telemetry::snapshot();
}

bool
Runtime::dumpTrace(const char *path) const
{
    return telemetry::dumpTrace(path);
}

// --- service default --------------------------------------------------------

void *
Service::fault(uint32_t id)
{
    panic("service does not support handle faults (handle %u)", id);
}

} // namespace alaska
