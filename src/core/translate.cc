#include "core/translate.h"

namespace alaska
{

void *
translateChecked(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (static_cast<int64_t>(v) >= 0)
        return const_cast<void *>(maybe_handle);
    const uint32_t id = (v >> 32) & (maxHandleId - 1);
    telemetry::countHot(telemetry::Counter::TranslateFast);
    const HandleTableEntry &e = Runtime::gTableBase[id];
    if (__builtin_expect(e.invalid(), 0)) {
        // Trap to the runtime; the service restores the object.
        void *base = Runtime::gRuntime->handleFault(id);
        return static_cast<char *>(base) + static_cast<uint32_t>(v);
    }
    return static_cast<char *>(e.ptr.load(std::memory_order_relaxed)) +
           static_cast<uint32_t>(v);
}

} // namespace alaska
