/**
 * @file
 * The handle table (paper §4.2.1): a single-level array of per-object
 * entries, analogous to a one-level page table but with one entry per
 * object. The whole table is reserved virtually up front (it can never
 * move once handles are live) and is backed lazily by demand paging.
 *
 * Entry allocation is O(1): a free list of recycled IDs is consulted
 * first, then a bump cursor. To keep many mutator threads off a single
 * lock, the free list is split into cache-line-padded shards selected
 * by thread; the bump cursor stays global so watermark semantics are
 * unchanged. On top of the shards, reserveBatch()/unreserveBatch() let
 * per-thread magazines (see ThreadState) move IDs in and out in bulk,
 * so the steady-state allocate/release path touches no shared state.
 * Live-entry accounting is likewise sharded: each thread bumps a
 * per-shard delta and liveCount() sums them, keeping the hot path off
 * any single contended cache line.
 */

#ifndef ALASKA_CORE_HANDLE_TABLE_H
#define ALASKA_CORE_HANDLE_TABLE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/handle.h"

namespace alaska
{

/**
 * One handle table entry (HTE).
 *
 * The paper's minimal HTE is just the backing pointer (8 bytes/object);
 * we carry the object size and a flags/state word so services and the
 * handle-fault path (§7) do not need a side table.
 */
struct HandleTableEntry
{
    /** Flag bits stored in state. */
    enum StateBits : uint32_t
    {
        Allocated = 1U << 0,
        /** Set by a service to force translation through the fault
         *  path (the "handle faults" mechanism of §7). */
        Invalid = 1U << 1,
    };

    /** Current backing memory; updated by services when objects move. */
    std::atomic<void *> ptr{nullptr};
    /** Object size in bytes as requested at halloc time. */
    uint32_t size = 0;
    /**
     * Entry state. The low bits are StateBits; the remaining bits are
     * an atomic pin count. Since the epoch rework of scoped
     * translation, the count is fed only by pinned<T> (via
     * ConcurrentPin — the API's one per-object pin) and by the
     * ablation-only AtomicPins tracking mode; campaigns veto a move
     * when the count is nonzero, everything else rides epoch grace.
     */
    std::atomic<uint32_t> state{0};

    static constexpr uint32_t pinCountShift = 8;
    static constexpr uint32_t pinCountOne = 1U << pinCountShift;

    bool
    allocated() const
    {
        return state.load(std::memory_order_relaxed) & Allocated;
    }

    bool
    invalid() const
    {
        return state.load(std::memory_order_acquire) & Invalid;
    }

    uint32_t
    atomicPinCount() const
    {
        return state.load(std::memory_order_relaxed) >> pinCountShift;
    }
};

static_assert(sizeof(HandleTableEntry) == 16,
              "HTE should stay one load wide plus metadata");

/**
 * The concurrent-relocation mark (paper §7): a mover tags the low bit
 * of an entry's backing pointer while it speculatively copies the
 * object (objects are 16-byte aligned, so the bit is free). Accessors
 * and the free path clear the mark to abort the in-flight move. The
 * helpers live here so the runtime's hfree/hrealloc, the low-level
 * relocation protocol, and Anchorage campaigns agree on the encoding.
 */
namespace reloc
{

inline constexpr uint64_t markBit = 1;

inline void *
marked(void *ptr)
{
    return reinterpret_cast<void *>(reinterpret_cast<uint64_t>(ptr) |
                                    markBit);
}

inline void *
unmarked(void *ptr)
{
    return reinterpret_cast<void *>(reinterpret_cast<uint64_t>(ptr) &
                                    ~markBit);
}

inline bool
isMarked(const void *ptr)
{
    return reinterpret_cast<uint64_t>(ptr) & markBit;
}

} // namespace reloc

/**
 * The single-level handle table.
 *
 * Thread safety: allocate()/release() and the batch reservation API may
 * be called concurrently; reads of entries through translation are
 * lock-free.
 */
class HandleTable
{
  public:
    /** Number of free-list shards. Must be a power of two. */
    static constexpr uint32_t numShards = 16;

    /**
     * Process-wide round-robin ordinal of the calling thread, assigned
     * on first use and stable for the thread's lifetime. The table maps
     * a thread to its free-list shard as ordinal mod numShards; other
     * shard-keyed subsystems (the Anchorage service's per-shard
     * sub-heap chains) key off the same ordinal so a thread's handle-ID
     * shard and its heap shard coincide.
     */
    static uint32_t threadOrdinal();

    /**
     * Reserve a table with the given capacity (entries). The memory is
     * mapped with MAP_NORESERVE so only touched pages consume RSS,
     * matching the paper's "mmap it in its entirety at startup" scheme.
     */
    explicit HandleTable(uint32_t capacity);
    ~HandleTable();

    HandleTable(const HandleTable &) = delete;
    HandleTable &operator=(const HandleTable &) = delete;

    /**
     * Allocate a fresh entry.
     * @return its handle ID.
     */
    uint32_t allocate();

    /** Return an entry to the calling thread's free-list shard. */
    void release(uint32_t id);

    // --- batch reservation (magazine refill/flush) ----------------------
    /**
     * Reserve up to want IDs for the calling thread, consulting its
     * free-list shard first and bumping the cursor for the remainder.
     * Reserved IDs are *not* yet allocated: they are invisible to
     * liveCount() until activate()d, and must be returned with
     * unreserveBatch() if never used. Fatals only if the table is
     * completely exhausted (all shards empty and the cursor at
     * capacity); otherwise returns at least one ID.
     *
     * Reserved IDs parked in per-thread magazines are unreachable to
     * other threads, so size the table with headroom of roughly
     * HandleMagazine::capacity x thread count beyond peak live
     * handles — negligible against the default 2^22-entry capacity.
     * @return the number of IDs written to out.
     */
    uint32_t reserveBatch(uint32_t *out, uint32_t want);

    /** Return unused reserved IDs to the calling thread's shard. */
    void unreserveBatch(const uint32_t *ids, uint32_t count);

    /** Mark a reserved ID as a live allocation. */
    void activate(uint32_t id);

    /**
     * Clear a live entry back to the reserved state *without* putting it
     * on any free list — the caller keeps the ID (in its magazine).
     * Any atomic pin count in the entry's state survives: a concurrent
     * accessor that pinned the entry must be able to unpin it after the
     * free without corrupting the state word.
     */
    void deactivate(uint32_t id);

    /** Access an entry by ID (bounds-checked in debug). */
    HandleTableEntry &entry(uint32_t id);
    const HandleTableEntry &entry(uint32_t id) const;

    /** Base pointer, for the inline translation fast path. */
    HandleTableEntry *base() { return table_; }

    /** Capacity in entries. */
    uint32_t capacity() const { return capacity_; }

    /**
     * One past the highest ID ever allocated; IDs >= this are untouched.
     * Barriers size their pinned-set bitmaps from this watermark.
     */
    uint32_t watermark() const;

    /**
     * Number of currently live (allocated) entries. Summed over the
     * per-shard deltas, so concurrent callers may observe a transiently
     * stale value; quiescent reads are exact.
     */
    uint32_t liveCount() const;

  private:
    /**
     * One free-list shard, padded so concurrent release() calls from
     * threads mapped to different shards never share a cache line.
     */
    struct alignas(64) Shard
    {
        std::mutex mutex;
        std::vector<uint32_t> freeList;
        /**
         * This shard's contribution to liveCount(). Each thread bumps
         * its home shard's delta, so the magazine fast path never RMWs
         * a shared counter; individual deltas may go negative (a handle
         * can be activated on one shard and deactivated on another) but
         * the sum is exact.
         */
        std::atomic<int64_t> liveDelta{0};
    };

    /** The calling thread's home shard (round-robin assigned). */
    Shard &homeShard();

    /** Bump-allocate up to want fresh IDs; returns how many. */
    uint32_t bumpBatch(uint32_t *out, uint32_t want);

    /** Steal free IDs from any shard (slow path near exhaustion). */
    uint32_t stealBatch(uint32_t *out, uint32_t want);

    HandleTableEntry *table_ = nullptr;
    uint32_t capacity_ = 0;
    std::atomic<uint32_t> bump_{0};
    Shard shards_[numShards];
};

} // namespace alaska

#endif // ALASKA_CORE_HANDLE_TABLE_H
