/**
 * @file
 * The handle table (paper §4.2.1): a single-level array of per-object
 * entries, analogous to a one-level page table but with one entry per
 * object. The whole table is reserved virtually up front (it can never
 * move once handles are live) and is backed lazily by demand paging.
 *
 * Entry allocation is O(1): a free list of recycled IDs is consulted
 * first, then a bump cursor.
 */

#ifndef ALASKA_CORE_HANDLE_TABLE_H
#define ALASKA_CORE_HANDLE_TABLE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/handle.h"

namespace alaska
{

/**
 * One handle table entry (HTE).
 *
 * The paper's minimal HTE is just the backing pointer (8 bytes/object);
 * we carry the object size and a flags/state word so services and the
 * handle-fault path (§7) do not need a side table.
 */
struct HandleTableEntry
{
    /** Flag bits stored in state. */
    enum StateBits : uint32_t
    {
        Allocated = 1U << 0,
        /** Set by a service to force translation through the fault
         *  path (the "handle faults" mechanism of §7). */
        Invalid = 1U << 1,
    };

    /** Current backing memory; updated by services when objects move. */
    std::atomic<void *> ptr{nullptr};
    /** Object size in bytes as requested at halloc time. */
    uint32_t size = 0;
    /**
     * Entry state. The low bits are StateBits; the remaining bits are an
     * atomic pin count used only in the (ablation-only) AtomicPins
     * tracking mode.
     */
    std::atomic<uint32_t> state{0};

    static constexpr uint32_t pinCountShift = 8;
    static constexpr uint32_t pinCountOne = 1U << pinCountShift;

    bool
    allocated() const
    {
        return state.load(std::memory_order_relaxed) & Allocated;
    }

    bool
    invalid() const
    {
        return state.load(std::memory_order_acquire) & Invalid;
    }

    uint32_t
    atomicPinCount() const
    {
        return state.load(std::memory_order_relaxed) >> pinCountShift;
    }
};

static_assert(sizeof(HandleTableEntry) == 16,
              "HTE should stay one load wide plus metadata");

/**
 * The single-level handle table.
 *
 * Thread safety: allocate()/release() may be called concurrently; reads
 * of entries through translation are lock-free.
 */
class HandleTable
{
  public:
    /**
     * Reserve a table with the given capacity (entries). The memory is
     * mapped with MAP_NORESERVE so only touched pages consume RSS,
     * matching the paper's "mmap it in its entirety at startup" scheme.
     */
    explicit HandleTable(uint32_t capacity);
    ~HandleTable();

    HandleTable(const HandleTable &) = delete;
    HandleTable &operator=(const HandleTable &) = delete;

    /**
     * Allocate a fresh entry.
     * @return its handle ID.
     */
    uint32_t allocate();

    /** Return an entry to the free list. */
    void release(uint32_t id);

    /** Access an entry by ID (bounds-checked in debug). */
    HandleTableEntry &entry(uint32_t id);
    const HandleTableEntry &entry(uint32_t id) const;

    /** Base pointer, for the inline translation fast path. */
    HandleTableEntry *base() { return table_; }

    /** Capacity in entries. */
    uint32_t capacity() const { return capacity_; }

    /**
     * One past the highest ID ever allocated; IDs >= this are untouched.
     * Barriers size their pinned-set bitmaps from this watermark.
     */
    uint32_t watermark() const;

    /** Number of currently live (allocated) entries. */
    uint32_t liveCount() const;

  private:
    HandleTableEntry *table_ = nullptr;
    uint32_t capacity_ = 0;
    std::atomic<uint32_t> bump_{0};
    std::atomic<uint32_t> live_{0};
    std::mutex freeMutex_;
    std::vector<uint32_t> freeList_;
};

} // namespace alaska

#endif // ALASKA_CORE_HANDLE_TABLE_H
