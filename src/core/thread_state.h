/**
 * @file
 * Per-thread runtime state: the pin-set shadow stack and the safepoint
 * mode used by the stop-the-world barrier (paper §3.4, §4.1.3).
 *
 * In the paper, pin sets live directly in stack frames and are found at
 * barrier time by walking the native stack with LLVM StackMaps +
 * libunwind. Without an LLVM backend we keep an explicit shadow stack of
 * frame records per thread: each compiler-shaped function pushes one
 * record pointing at its stack-resident slot array. The data layout and
 * the no-atomics property are preserved: pin stores are plain writes to
 * the thread's own stack.
 */

#ifndef ALASKA_CORE_THREAD_STATE_H
#define ALASKA_CORE_THREAD_STATE_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace alaska
{

/** Where a thread stands with respect to barriers. */
enum class ThreadMode : int
{
    /** Executing managed (transformed) code; must poll safepoints. */
    Managed = 0,
    /** Parked at a safepoint inside a barrier. */
    Parked = 1,
    /**
     * Executing external (untransformed) code, possibly blocked in the
     * kernel. Barriers do not wait for these threads: no pin sets can
     * exist below the external frame (paper §4.1.3).
     */
    External = 2,
};

/** One pin-set frame: a view of a slot array living on the call stack. */
struct PinFrameRecord
{
    /** Slot array; each slot holds a handle value or 0. */
    const uint64_t *slots = nullptr;
    /** Number of slots (decided statically per function). */
    uint32_t count = 0;
};

/**
 * A per-thread cache of reserved handle IDs (a "magazine", after
 * Bonwick's magazine allocator). Steady-state allocate/release pops and
 * pushes here with no shared state at all; the magazine refills from
 * and flushes to the handle table's free-list shards in batches.
 * Owner-thread access only.
 */
struct HandleMagazine
{
    /** Batch size: one refill grabs this many IDs from the table. */
    static constexpr uint32_t capacity = 64;

    /** IDs held, LIFO at ids[count - 1]; none are live allocations. */
    uint32_t ids[capacity];
    uint32_t count = 0;

    bool empty() const { return count == 0; }
    bool full() const { return count == capacity; }
};

/** All barrier-relevant state of one registered thread. */
struct ThreadState
{
    std::atomic<ThreadMode> mode{ThreadMode::Managed};
    /** Shadow stack of pin-set frames; owner-writable only. */
    std::vector<PinFrameRecord> frames;
    /** Cached handle IDs for lock-free allocate/release fast paths. */
    HandleMagazine magazine;
    /**
     * The thread's published access epoch: odd while the thread is
     * inside a ConcurrentAccessScope, even when quiescent, advanced by
     * one plain-RMW-free store at each outermost scope boundary (the
     * thread is the only writer). This is the reader half of the
     * grace-period protocol (Runtime::waitForGrace): a relocation
     * campaign waits until every thread whose epoch was odd at the wait
     * has advanced, which proves every translation obtained before the
     * wait began has been dropped. No per-object state is touched on
     * the deref path — protection is one word per *thread*, not one
     * RMW per access.
     */
    std::atomic<uint64_t> accessEpoch{0};
    /** Statistics: how many times this thread parked in a barrier. */
    uint64_t parks = 0;

    ThreadState() { frames.reserve(64); }
};

} // namespace alaska

#endif // ALASKA_CORE_THREAD_STATE_H
