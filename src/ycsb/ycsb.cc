#include "ycsb/ycsb.h"

#include <cmath>

#include "base/logging.h"

namespace alaska::ycsb
{

double
ZipfianGenerator::zeta(uint64_t n, double theta)
{
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta,
                                   uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    ALASKA_ASSERT(n > 0, "zipfian over an empty keyspace");
    zetan_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
}

uint64_t
ZipfianGenerator::next()
{
    const double u = rng_.real();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double inner = eta_ * u - eta_ + 1.0;
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(inner, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

Workload::Workload(WorkloadKind kind, uint64_t records, uint64_t seed,
                   size_t value_size)
    : kind_(kind), records_(records), valueSize_(value_size),
      zipf_(records, 0.99, seed), rng_(seed * 31 + 7)
{
}

std::string
Workload::keyFor(uint64_t id)
{
    // YCSB hashes record ids so the popular keys are scattered.
    uint64_t h = id;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h = h ^ (h >> 31);
    return "user" + std::to_string(h % 100000000000ULL);
}

std::string
Workload::valueFor(uint64_t id) const
{
    std::string value(valueSize_, '\0');
    Rng rng(id * 2654435761ULL + 1);
    for (auto &c : value) {
        c = static_cast<char>('a' + rng.below(26));
    }
    return value;
}

Request
Workload::next()
{
    const uint64_t key = zipf_.next();
    switch (kind_) {
      case WorkloadKind::A:
        return {rng_.chance(0.5) ? OpType::Read : OpType::Update, key};
      case WorkloadKind::B:
        return {rng_.chance(0.95) ? OpType::Read : OpType::Update, key};
      case WorkloadKind::C:
        return {OpType::Read, key};
      case WorkloadKind::F:
        return {rng_.chance(0.5) ? OpType::Read
                                 : OpType::ReadModifyWrite,
                key};
    }
    return {OpType::Read, key};
}

} // namespace alaska::ycsb
