/**
 * @file
 * A YCSB-style workload generator (Cooper et al., SoCC'10), used by the
 * paper to drive Redis (workloads A and F, §5.5) and memcached
 * (workload A, §5.6).
 *
 * Implements the standard request distributions (zipfian over the
 * keyspace, uniform, latest) and the core workload mixes:
 *   A: 50% read / 50% update        B: 95% read / 5% update
 *   C: 100% read                    F: 50% read / 50% read-modify-write
 */

#ifndef ALASKA_YCSB_YCSB_H
#define ALASKA_YCSB_YCSB_H

#include <cstdint>
#include <string>

#include "base/rng.h"

namespace alaska::ycsb
{

/**
 * Zipfian generator over [0, n) with exponent theta, using the
 * Gray et al. rejection-free method (the same algorithm as YCSB's
 * ZipfianGenerator).
 */
class ZipfianGenerator
{
  public:
    explicit ZipfianGenerator(uint64_t n, double theta = 0.99,
                              uint64_t seed = 1);

    /** Next sample in [0, n). Small values are the popular ones. */
    uint64_t next();

    uint64_t n() const { return n_; }

  private:
    static double zeta(uint64_t n, double theta);

    uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    double zeta2_;
    Rng rng_;
};

/** Request kinds. */
enum class OpType
{
    Read,
    Update,
    Insert,
    ReadModifyWrite,
};

/** One generated request. */
struct Request
{
    OpType op;
    uint64_t key;
};

/** The standard workload mixes. */
enum class WorkloadKind
{
    A, ///< 50% read, 50% update, zipfian
    B, ///< 95% read, 5% update, zipfian
    C, ///< 100% read, zipfian
    F, ///< 50% read, 50% read-modify-write, zipfian
};

/** Workload = record count + mix + distribution. */
class Workload
{
  public:
    Workload(WorkloadKind kind, uint64_t records, uint64_t seed = 7,
             size_t value_size = 500);

    /** Key string for record id ("user<hash>"), as YCSB formats keys. */
    static std::string keyFor(uint64_t id);

    /** Deterministic value payload for a record. */
    std::string valueFor(uint64_t id) const;

    /** Next request. */
    Request next();

    uint64_t records() const { return records_; }
    size_t valueSize() const { return valueSize_; }
    WorkloadKind kind() const { return kind_; }

  private:
    WorkloadKind kind_;
    uint64_t records_;
    size_t valueSize_;
    ZipfianGenerator zipf_;
    Rng rng_;
};

} // namespace alaska::ycsb

#endif // ALASKA_YCSB_YCSB_H
