/**
 * @file
 * MiniKv: an in-memory key-value cache with the allocation behaviour
 * of Redis — sds keys/values, a chained dict with incremental rehash,
 * exact LRU eviction under a maxmemory limit, and a port of
 * activedefrag (the bespoke, allocator-hint-driven defragmentation
 * that the paper contrasts with Anchorage in §5.5).
 *
 * Under AlaskaAlloc every stored pointer is a handle; under
 * ModelAlloc<JemallocModel> the activedefrag cycle can rewire the
 * structures by hand, exactly like Redis does.
 */

#ifndef ALASKA_KV_MINIKV_H
#define ALASKA_KV_MINIKV_H

#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kv/dict.h"
#include "kv/sds.h"

namespace alaska::kv
{

/** Store statistics. */
struct KvStats
{
    size_t keys = 0;
    size_t usedMemory = 0;
    size_t evictions = 0;
    size_t defragMoves = 0;
};

/** The cache. */
template <typename A>
class MiniKv
{
  public:
    /**
     * @param alloc allocator policy
     * @param maxmemory eviction threshold in (self-accounted) bytes;
     *        0 disables eviction
     */
    explicit MiniKv(A &alloc, size_t maxmemory = 0)
        : alloc_(alloc), dict_(alloc), maxMemory_(maxmemory)
    {
    }

    ~MiniKv() { clear(); }

    /** Set key to value, inserting or replacing; evicts LRU if over. */
    void
    set(std::string_view key, std::string_view value)
    {
        DictEntry *e = dict_.find(key);
        if (e) {
            DictEntry *raw = A::template deref<DictEntry>(e);
            usedMemory_ -= sdsAllocSize(sdsLen<A>(raw->value));
            sdsFree(alloc_, raw->value);
            Sds fresh = sdsNew(alloc_, value);
            A::template write<DictEntry>(e)->value = fresh;
            usedMemory_ += sdsAllocSize(value.size());
            lruTouch(e);
        } else {
            e = dict_.insert(key);
            Sds fresh = sdsNew(alloc_, value);
            A::template write<DictEntry>(e)->value = fresh;
            usedMemory_ += Dict<A>::entryOverhead(key) +
                           sdsAllocSize(value.size());
            lruPushFront(e);
        }
        evictIfNeeded();
    }

    /** Get a copy of the value; nullopt on miss. Touches LRU. */
    std::optional<std::string>
    get(std::string_view key)
    {
        DictEntry *e = dict_.find(key);
        if (!e)
            return std::nullopt;
        lruTouch(e);
        return sdsToString<A>(
            A::template deref<DictEntry>(e)->value);
    }

    /** Delete a key. @return true if it existed. */
    bool
    del(std::string_view key)
    {
        DictEntry *e = dict_.remove(key);
        if (!e)
            return false;
        lruUnlink(e);
        freeEntry(e);
        return true;
    }

    /** Drop everything. */
    void
    clear()
    {
        while (lruTail_) {
            DictEntry *e = lruTail_;
            DictEntry *raw = A::template deref<DictEntry>(e);
            dict_.remove(viewOfKey(raw));
            lruUnlink(e);
            freeEntry(e);
        }
    }

    KvStats
    stats() const
    {
        KvStats s;
        s.keys = dict_.used();
        s.usedMemory = usedMemory_;
        s.evictions = evictions_;
        s.defragMoves = defragMoves_;
        return s;
    }

    size_t usedMemory() const { return usedMemory_; }
    Dict<A> &dict() { return dict_; }

    /**
     * One activedefrag cycle: walk the keyspace, ask the allocator
     * which allocations sit badly (jemalloc's defrag hint), and
     * reallocate them — patching the dict chain, LRU list and value
     * pointers by hand. This is the per-application surgery the paper
     * says "cannot be transferred to other applications" (§1, §5.5).
     * @return allocations moved.
     */
    size_t
    defragCycle()
    {
        size_t moved = dict_.defragTables();

        std::vector<DictEntry *> entries;
        entries.reserve(dict_.used());
        dict_.forEach([&](DictEntry *e) { entries.push_back(e); });

        for (DictEntry *e : entries) {
            auto raw = A::template write<DictEntry>(e);
            // Move the value sds?
            if (alloc_.shouldMove(raw->value)) {
                raw->value = moveSds(raw->value);
                moved++;
            }
            // Move the key sds?
            if (alloc_.shouldMove(raw->key)) {
                raw->key = moveSds(raw->key);
                moved++;
            }
            // Move the entry struct itself? Requires chain + LRU
            // surgery.
            if (alloc_.shouldMove(e)) {
                auto *fresh = static_cast<DictEntry *>(
                    alloc_.alloc(sizeof(DictEntry)));
                std::memcpy(A::template write<DictEntry>(fresh).get(),
                            raw.get(), sizeof(DictEntry));
                dict_.replaceEntry(e, fresh);
                lruReplace(e, fresh);
                alloc_.free(e);
                moved++;
            }
        }
        defragMoves_ += moved;
        return moved;
    }

  private:
    std::string_view
    viewOfKey(DictEntry *raw)
    {
        auto *hdr = A::template deref<SdsHeader>(
            static_cast<SdsHeader *>(raw->key));
        return {hdr->data, hdr->len};
    }

    void
    freeEntry(DictEntry *e)
    {
        DictEntry *raw = A::template deref<DictEntry>(e);
        usedMemory_ -= sdsAllocSize(sdsLen<A>(raw->key)) +
                       sdsAllocSize(sdsLen<A>(raw->value)) +
                       sizeof(DictEntry);
        sdsFree(alloc_, raw->key);
        sdsFree(alloc_, raw->value);
        alloc_.free(e);
    }

    Sds
    moveSds(Sds old_sds)
    {
        const uint32_t len = sdsLen<A>(old_sds);
        Sds fresh = alloc_.alloc(sdsAllocSize(len));
        std::memcpy(A::template write<SdsHeader>(
                        static_cast<SdsHeader *>(fresh))
                        .get(),
                    A::template deref<SdsHeader>(
                        static_cast<SdsHeader *>(old_sds)),
                    sdsAllocSize(len));
        alloc_.free(old_sds);
        return fresh;
    }

    // --- exact LRU (intrusive list over entries) -----------------------
    void
    lruPushFront(DictEntry *e)
    {
        auto raw = A::template write<DictEntry>(e);
        raw->lruPrev = nullptr;
        raw->lruNext = lruHead_;
        if (lruHead_)
            A::template write<DictEntry>(lruHead_)->lruPrev = e;
        lruHead_ = e;
        if (!lruTail_)
            lruTail_ = e;
    }

    void
    lruUnlink(DictEntry *e)
    {
        auto raw = A::template write<DictEntry>(e);
        if (raw->lruPrev) {
            A::template write<DictEntry>(raw->lruPrev)->lruNext =
                raw->lruNext;
        } else {
            lruHead_ = raw->lruNext;
        }
        if (raw->lruNext) {
            A::template write<DictEntry>(raw->lruNext)->lruPrev =
                raw->lruPrev;
        } else {
            lruTail_ = raw->lruPrev;
        }
        raw->lruPrev = raw->lruNext = nullptr;
    }

    void
    lruTouch(DictEntry *e)
    {
        if (lruHead_ == e)
            return;
        lruUnlink(e);
        lruPushFront(e);
    }

    void
    lruReplace(DictEntry *old_entry, DictEntry *new_entry)
    {
        DictEntry *raw = A::template deref<DictEntry>(new_entry);
        if (raw->lruPrev) {
            A::template write<DictEntry>(raw->lruPrev)->lruNext =
                new_entry;
        } else {
            lruHead_ = new_entry;
        }
        if (raw->lruNext) {
            A::template write<DictEntry>(raw->lruNext)->lruPrev =
                new_entry;
        } else {
            lruTail_ = new_entry;
        }
        (void)old_entry;
    }

    void
    evictIfNeeded()
    {
        if (maxMemory_ == 0)
            return;
        while (usedMemory_ > maxMemory_ && lruTail_) {
            DictEntry *victim = lruTail_;
            DictEntry *raw = A::template deref<DictEntry>(victim);
            dict_.remove(viewOfKey(raw));
            lruUnlink(victim);
            freeEntry(victim);
            evictions_++;
        }
    }

    A &alloc_;
    Dict<A> dict_;
    size_t maxMemory_;
    size_t usedMemory_ = 0;
    size_t evictions_ = 0;
    size_t defragMoves_ = 0;
    DictEntry *lruHead_ = nullptr;
    DictEntry *lruTail_ = nullptr;
};

} // namespace alaska::kv

#endif // ALASKA_KV_MINIKV_H
