#include "kv/cache_workload.h"

namespace alaska::kv
{

namespace
{

/** Redis dictEntry + robj headers, roughly. */
constexpr size_t entryBytes = 48;
/** sds header + nul. */
constexpr size_t sdsOverhead = 9;

} // anonymous namespace

CacheWorkload::CacheWorkload(AllocModel &model,
                             CacheWorkloadConfig config)
    : model_(model), config_(config), rng_(config.seed)
{
    bucketSlots_ = 16;
    buckets_ = model_.alloc(bucketSlots_ * 8);
    usedMemory_ += bucketSlots_ * 8;
}

CacheWorkload::~CacheWorkload()
{
    // Leave teardown to the owner via drain(); harnesses often want
    // the final heap intact for a last RSS sample.
}

size_t
CacheWorkload::valueSizeFor(uint64_t seq) const
{
    if (!config_.sizeDrift)
        return config_.valueSize;
    // The mix cycles through size scales one phase at a time.
    static constexpr double scales[] = {1.0,  0.6, 1.4, 0.8,
                                        1.8, 1.2, 0.5, 1.6};
    const uint64_t phase = (seq / config_.driftPeriod) % 8;
    return static_cast<size_t>(
        static_cast<double>(config_.valueSize) * scales[phase]);
}

void
CacheWorkload::insertOne()
{
    Record record;
    const size_t value_size = valueSizeFor(nextSeq_);
    record.entry = model_.alloc(entryBytes);
    record.key = model_.alloc(config_.keyLen + sdsOverhead);
    record.value = model_.alloc(value_size + sdsOverhead);
    record.valueSize = static_cast<uint32_t>(value_size);
    record.seq = nextSeq_++;
    live_.push_back(record);
    usedMemory_ += entryBytes + config_.keyLen + sdsOverhead +
                   value_size + sdsOverhead;
    insertions_++;
    growBucketsIfNeeded();
    evictIfNeeded();
}

void
CacheWorkload::growBucketsIfNeeded()
{
    if (live_.size() < bucketSlots_)
        return;
    // Redis's dict doubles and (incrementally) migrates; the trace
    // effect is one new array allocation and one free of the old.
    usedMemory_ -= bucketSlots_ * 8;
    model_.free(buckets_);
    bucketSlots_ *= 2;
    buckets_ = model_.alloc(bucketSlots_ * 8);
    usedMemory_ += bucketSlots_ * 8;
}

void
CacheWorkload::freeRecord(const Record &record)
{
    model_.free(record.entry);
    model_.free(record.key);
    model_.free(record.value);
    usedMemory_ -= entryBytes + config_.keyLen + sdsOverhead +
                   record.valueSize + sdsOverhead;
}

void
CacheWorkload::evictIfNeeded()
{
    while (usedMemory_ > config_.maxMemory && !live_.empty()) {
        // Sampled LRU: pick the oldest of a few random candidates.
        // This scatters frees across the heap, which is what makes
        // the trace fragment (exact LRU would free in allocation
        // order and let slab allocators off the hook).
        size_t victim = rng_.below(live_.size());
        for (int s = 1; s < config_.evictionSamples; s++) {
            const size_t cand = rng_.below(live_.size());
            if (live_[cand].seq < live_[victim].seq)
                victim = cand;
        }
        freeRecord(live_[victim]);
        live_[victim] = live_.back();
        live_.pop_back();
        evictions_++;
    }
}

size_t
CacheWorkload::defragCycle(size_t budget)
{
    if (live_.empty())
        return 0;
    size_t moved = 0;
    auto maybe_move = [&](uint64_t &token, size_t size) {
        if (!model_.shouldMove(token))
            return;
        model_.free(token);
        token = model_.alloc(size);
        moved++;
    };
    for (size_t n = 0; n < budget; n++) {
        defragCursor_ = (defragCursor_ + 1) % live_.size();
        Record &record = live_[defragCursor_];
        maybe_move(record.entry, entryBytes);
        maybe_move(record.key, config_.keyLen + sdsOverhead);
        maybe_move(record.value, record.valueSize + sdsOverhead);
    }
    if (model_.shouldMove(buckets_)) {
        model_.free(buckets_);
        buckets_ = model_.alloc(bucketSlots_ * 8);
        moved++;
    }
    return moved;
}

void
CacheWorkload::drain()
{
    for (const Record &record : live_)
        freeRecord(record);
    live_.clear();
    model_.free(buckets_);
    usedMemory_ -= bucketSlots_ * 8;
}

} // namespace alaska::kv
