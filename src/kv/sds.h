/**
 * @file
 * Simple dynamic strings, modeled on Redis's sds: a length-prefixed,
 * heap-allocated byte string. The stored pointer may be a handle under
 * AlaskaAlloc; every read goes through the policy's deref() and every
 * store through its write() guard.
 */

#ifndef ALASKA_KV_SDS_H
#define ALASKA_KV_SDS_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace alaska::kv
{

/** Header preceding the bytes of an sds string. */
struct SdsHeader
{
    uint32_t len;
    char data[]; // NOLINT: flexible array member, as in Redis
};

/** An sds value is an opaque pointer (maybe-handle) to an SdsHeader. */
using Sds = void *;

/** Bytes charged to the allocator for a string of length len. */
constexpr size_t
sdsAllocSize(size_t len)
{
    return sizeof(SdsHeader) + len + 1;
}

/** Create an sds from bytes. */
template <typename A>
Sds
sdsNew(A &alloc, std::string_view text)
{
    Sds s = alloc.alloc(sdsAllocSize(text.size()));
    // write(): even a freshly allocated block is already a campaign
    // candidate — its handle entry is live the moment halloc returns.
    auto hdr = A::template write<SdsHeader>(static_cast<SdsHeader *>(s));
    hdr->len = static_cast<uint32_t>(text.size());
    std::memcpy(hdr->data, text.data(), text.size());
    hdr->data[text.size()] = '\0';
    return s;
}

/** Free an sds. */
template <typename A>
void
sdsFree(A &alloc, Sds s)
{
    alloc.free(s);
}

/** Length without touching the bytes. */
template <typename A>
uint32_t
sdsLen(Sds s)
{
    return A::template deref<SdsHeader>(static_cast<SdsHeader *>(s))->len;
}

/** Compare an sds with plain bytes. */
template <typename A>
bool
sdsEquals(Sds s, std::string_view text)
{
    const auto *hdr =
        A::template deref<SdsHeader>(static_cast<SdsHeader *>(s));
    return hdr->len == text.size() &&
           std::memcmp(hdr->data, text.data(), text.size()) == 0;
}

/** Copy out to a std::string (test/reply convenience). */
template <typename A>
std::string
sdsToString(Sds s)
{
    const auto *hdr =
        A::template deref<SdsHeader>(static_cast<SdsHeader *>(s));
    return std::string(hdr->data, hdr->len);
}

/** FNV-1a over the sds bytes. */
template <typename A>
uint64_t
sdsHash(Sds s)
{
    const auto *hdr =
        A::template deref<SdsHeader>(static_cast<SdsHeader *>(s));
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t i = 0; i < hdr->len; i++) {
        h ^= static_cast<unsigned char>(hdr->data[i]);
        h *= 1099511628211ULL;
    }
    return h;
}

/** FNV-1a over plain bytes (must match sdsHash). */
inline uint64_t
bytesHash(std::string_view text)
{
    uint64_t h = 1469598103934665603ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace alaska::kv

#endif // ALASKA_KV_SDS_H
