/**
 * @file
 * The Redis-cache allocation workload of Figures 1, 9, 10 and 11.
 *
 * "Configuring Redis this way is very common when it is used as a
 * cache": a maxmemory limit, a stream of inserts, and sampled-LRU
 * eviction once the limit is hit. What matters for fragmentation is
 * the resulting allocation trace — interleaved dict entries, key sds,
 * value sds and growing bucket arrays, with evictions scattered across
 * the heap by Redis's *sampled* LRU. This driver reproduces exactly
 * that trace against any AllocModel (glibc model, jemalloc model,
 * Mesh, or Anchorage via its adapter), with Redis-style used-memory
 * accounting, plus the activedefrag reallocation cycle for allocators
 * that provide hints.
 */

#ifndef ALASKA_KV_CACHE_WORKLOAD_H
#define ALASKA_KV_CACHE_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "alloc_sim/alloc_model.h"
#include "base/rng.h"

namespace alaska::kv
{

/** Workload parameters (defaults follow the paper's Figure 9 setup). */
struct CacheWorkloadConfig
{
    /** Eviction threshold on self-accounted used memory. */
    size_t maxMemory = 100 << 20;
    /** Base value payload size ("inserts 100 GiB of data, 500 bytes
     *  at a time" in Figure 11). */
    size_t valueSize = 500;
    /** Key length in bytes. */
    size_t keyLen = 16;
    /** Eviction sampling width (Redis's maxmemory-samples). */
    int evictionSamples = 5;
    /**
     * Slow drift of the value-size mix over time. Real cache request
     * mixes drift, and drift is what defeats slab allocators: slots
     * freed in yesterday's size class cannot serve today's requests.
     * Without it, size-class-balanced churn lets non-moving allocator
     * *models* reuse slots too perfectly to reproduce the paper's
     * measured fragmentation ratios (see EXPERIMENTS.md).
     */
    bool sizeDrift = true;
    /** Inserts per drift phase. */
    uint64_t driftPeriod = 50000;
    uint64_t seed = 42;
};

/** Drives an allocator with the cache allocation trace. */
class CacheWorkload
{
  public:
    CacheWorkload(AllocModel &model, CacheWorkloadConfig config = {});
    ~CacheWorkload();

    /** Insert one record (dict entry + key + value), evicting under
     *  pressure and growing the bucket array as Redis's dict would. */
    void insertOne();

    /** Insert a batch. */
    void
    insert(size_t count)
    {
        for (size_t i = 0; i < count; i++)
            insertOne();
    }

    /**
     * One activedefrag cycle: scan up to budget live allocations and
     * reallocate those the allocator flags. No-op for allocators
     * without hints.
     * @return moves performed.
     */
    size_t defragCycle(size_t budget);

    /** Redis-style used_memory (what maxmemory compares against). */
    size_t usedMemory() const { return usedMemory_; }
    size_t liveRecords() const { return live_.size(); }
    size_t insertions() const { return insertions_; }
    size_t evictions() const { return evictions_; }

    /** Release everything (for leak-checking tests). */
    void drain();

  private:
    struct Record
    {
        uint64_t entry;
        uint64_t key;
        uint64_t value;
        uint32_t valueSize;
        uint64_t seq; ///< insertion sequence, for sampled LRU
    };

    /** Value size for the record inserted at sequence seq. */
    size_t valueSizeFor(uint64_t seq) const;
    void evictIfNeeded();
    void freeRecord(const Record &record);
    void growBucketsIfNeeded();

    AllocModel &model_;
    CacheWorkloadConfig config_;
    Rng rng_;
    std::vector<Record> live_;
    uint64_t buckets_ = 0;
    size_t bucketSlots_ = 0;
    size_t usedMemory_ = 0;
    uint64_t nextSeq_ = 0;
    size_t insertions_ = 0;
    size_t evictions_ = 0;
    /** Rotating defrag scan cursor. */
    size_t defragCursor_ = 0;
};

} // namespace alaska::kv

#endif // ALASKA_KV_CACHE_WORKLOAD_H
