/**
 * @file
 * A chained hash dictionary with incremental rehash, modeled on
 * Redis's dict: two tables, with buckets migrated a few at a time on
 * every operation while a resize is in progress. All stored pointers
 * (bucket arrays, entries, keys) are maybe-handles under AlaskaAlloc.
 * Chain walks and key compares read through the policy's deref();
 * every pointer store (bucket slots, next links, entry init) goes
 * through its write() guard, which is what keeps the stores ordered
 * against a concurrent relocation campaign.
 */

#ifndef ALASKA_KV_DICT_H
#define ALASKA_KV_DICT_H

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "base/logging.h"
#include "kv/sds.h"

namespace alaska::kv
{

/** One chained entry. key is an Sds; value is owner-defined. */
struct DictEntry
{
    Sds key;
    void *value;
    DictEntry *next;
    /** Intrusive LRU hooks (used by MiniKv). */
    DictEntry *lruPrev;
    DictEntry *lruNext;
};

/** The dictionary. */
template <typename A>
class Dict
{
  public:
    explicit Dict(A &alloc) : alloc_(alloc)
    {
        ht_[0] = newTable(initialSize);
        size_[0] = initialSize;
        ht_[1] = nullptr;
        size_[1] = 0;
    }

    ~Dict()
    {
        // The owner must have emptied the dict (it owns keys/values).
        for (int t = 0; t < 2; t++) {
            if (ht_[t])
                alloc_.free(ht_[t]);
        }
    }

    Dict(const Dict &) = delete;
    Dict &operator=(const Dict &) = delete;

    /**
     * Find the entry for key; nullptr if absent. Advances incremental
     * rehash by a step, as Redis does on every access.
     */
    DictEntry *
    find(std::string_view key)
    {
        rehashStep();
        const uint64_t h = bytesHash(key);
        for (int t = 0; t < 2; t++) {
            if (!ht_[t])
                continue;
            DictEntry **buckets = derefBuckets(t);
            DictEntry *e = buckets[h & (size_[t] - 1)];
            while (e) {
                DictEntry *raw = A::template deref<DictEntry>(e);
                if (sdsEquals<A>(raw->key, key))
                    return e;
                e = raw->next;
            }
        }
        return nullptr;
    }

    /**
     * Insert a fresh entry (key must not exist). The entry and the key
     * sds are allocated here; the caller sets value afterwards via
     * deref. @return the (maybe-handle) entry pointer.
     */
    DictEntry *
    insert(std::string_view key)
    {
        rehashStep();
        if (!rehashing() && used_ >= size_[0])
            startRehash(size_[0] * 2);

        const int t = rehashing() ? 1 : 0;
        const uint64_t h = bytesHash(key);
        auto *entry = static_cast<DictEntry *>(
            alloc_.alloc(sizeof(DictEntry)));
        Sds key_sds = sdsNew(alloc_, key);
        const size_t idx = h & (size_[t] - 1);
        DictEntry *raw_head = derefBuckets(t)[idx];
        {
            auto raw = A::template write<DictEntry>(entry);
            raw->key = key_sds;
            raw->value = nullptr;
            raw->next = raw_head;
            raw->lruPrev = nullptr;
            raw->lruNext = nullptr;
        }
        writeBuckets(t)[idx] = entry;
        used_++;
        return entry;
    }

    /**
     * Unlink and return the entry for key (caller frees key/value and
     * the entry itself); nullptr if absent.
     */
    DictEntry *
    remove(std::string_view key)
    {
        rehashStep();
        const uint64_t h = bytesHash(key);
        for (int t = 0; t < 2; t++) {
            if (!ht_[t])
                continue;
            DictEntry **buckets = derefBuckets(t);
            const size_t idx = h & (size_[t] - 1);
            DictEntry *e = buckets[idx];
            DictEntry *prev = nullptr;
            while (e) {
                DictEntry *raw = A::template deref<DictEntry>(e);
                if (sdsEquals<A>(raw->key, key)) {
                    if (prev) {
                        A::template write<DictEntry>(prev)->next =
                            raw->next;
                    } else {
                        writeBuckets(t)[idx] = raw->next;
                    }
                    used_--;
                    return e;
                }
                prev = e;
                e = raw->next;
            }
        }
        return nullptr;
    }

    /** Visit every entry: fn(DictEntry* maybe-handle). */
    template <typename F>
    void
    forEach(F fn)
    {
        for (int t = 0; t < 2; t++) {
            if (!ht_[t])
                continue;
            for (size_t i = 0; i < size_[t]; i++) {
                DictEntry *e = derefBuckets(t)[i];
                while (e) {
                    DictEntry *next =
                        A::template deref<DictEntry>(e)->next;
                    fn(e);
                    e = next;
                }
            }
        }
    }

    size_t used() const { return used_; }
    bool rehashing() const { return ht_[1] != nullptr; }
    /** Total bucket slots across both tables. */
    size_t bucketCount() const { return size_[0] + size_[1]; }

    /** Bytes charged for an entry + its key (accounting helper). */
    static size_t
    entryOverhead(std::string_view key)
    {
        return sizeof(DictEntry) + sdsAllocSize(key.size());
    }

    // --- activedefrag support (the bespoke pointer surgery) -----------
    /**
     * Replace the bucket-array allocations if the allocator wants them
     * moved. @return reallocations performed.
     */
    size_t
    defragTables()
    {
        size_t moved = 0;
        for (int t = 0; t < 2; t++) {
            if (!ht_[t] || !alloc_.shouldMove(ht_[t]))
                continue;
            void *fresh = alloc_.alloc(size_[t] * sizeof(DictEntry *));
            std::memcpy(A::template write<DictEntry *>(
                            static_cast<DictEntry **>(fresh))
                            .get(),
                        derefBuckets(t), size_[t] * sizeof(DictEntry *));
            alloc_.free(ht_[t]);
            ht_[t] = fresh;
            moved++;
        }
        return moved;
    }

    /**
     * Move one entry allocation: replaces old_entry (already copied
     * into new_entry by the caller) in its chain. This is exactly the
     * fix-every-pointer surgery activedefrag needs and Anchorage
     * doesn't (§5.5).
     */
    void
    replaceEntry(DictEntry *old_entry, DictEntry *new_entry)
    {
        const uint64_t h =
            sdsHash<A>(A::template deref<DictEntry>(old_entry)->key);
        for (int t = 0; t < 2; t++) {
            if (!ht_[t])
                continue;
            DictEntry **buckets = derefBuckets(t);
            const size_t idx = h & (size_[t] - 1);
            DictEntry *e = buckets[idx];
            DictEntry *prev = nullptr;
            while (e) {
                if (e == old_entry) {
                    if (prev) {
                        A::template write<DictEntry>(prev)->next =
                            new_entry;
                    } else {
                        writeBuckets(t)[idx] = new_entry;
                    }
                    return;
                }
                prev = e;
                e = A::template deref<DictEntry>(e)->next;
            }
        }
        panic("replaceEntry: entry not found in any chain");
    }

  private:
    static constexpr size_t initialSize = 16;
    static constexpr int rehashBatch = 4;

    void *
    newTable(size_t size)
    {
        void *table = alloc_.alloc(size * sizeof(DictEntry *));
        auto raw = A::template write<DictEntry *>(
            static_cast<DictEntry **>(table));
        for (size_t i = 0; i < size; i++)
            raw[i] = nullptr;
        return table;
    }

    DictEntry **
    derefBuckets(int t)
    {
        return A::template deref<DictEntry *>(
            static_cast<DictEntry **>(ht_[t]));
    }

    /** Store guard over a whole bucket array (one slot assignment). */
    auto
    writeBuckets(int t)
    {
        return A::template write<DictEntry *>(
            static_cast<DictEntry **>(ht_[t]));
    }

    void
    startRehash(size_t new_size)
    {
        ht_[1] = newTable(new_size);
        size_[1] = new_size;
        rehashIdx_ = 0;
    }

    /** Migrate a few buckets from ht0 to ht1 (Redis's dictRehash). */
    void
    rehashStep()
    {
        if (!rehashing())
            return;
        for (int n = 0; n < rehashBatch && rehashIdx_ < size_[0];
             rehashIdx_++) {
            DictEntry *e = derefBuckets(0)[rehashIdx_];
            while (e) {
                auto raw = A::template write<DictEntry>(e);
                DictEntry *next = raw->next;
                const uint64_t h = sdsHash<A>(raw->key);
                const size_t idx = h & (size_[1] - 1);
                raw->next = derefBuckets(1)[idx];
                writeBuckets(1)[idx] = e;
                e = next;
            }
            writeBuckets(0)[rehashIdx_] = nullptr;
            n++;
        }
        if (rehashIdx_ >= size_[0]) {
            // ht1 becomes ht0.
            alloc_.free(ht_[0]);
            ht_[0] = ht_[1];
            size_[0] = size_[1];
            ht_[1] = nullptr;
            size_[1] = 0;
            rehashIdx_ = 0;
        }
    }

    A &alloc_;
    void *ht_[2];
    size_t size_[2];
    size_t rehashIdx_ = 0;
    size_t used_ = 0;
};

} // namespace alaska::kv

#endif // ALASKA_KV_DICT_H
