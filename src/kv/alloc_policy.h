/**
 * @file
 * Allocator policies for the KV applications.
 *
 * The data structures (sds, dict, minikv) are written once against a
 * policy type, mirroring how the paper's evaluation compiles the same
 * unmodified Redis source against glibc malloc or through the Alaska
 * compiler:
 *
 *  - LibcAlloc: plain malloc/free; deref is the identity. The baseline.
 *  - AlaskaAlloc: halloc/hfree; every pointer the structure stores may
 *    be a handle, and deref() is the translation the compiler would
 *    have inserted (per-access granularity, i.e. the conservative
 *    no-hoisting placement), routed through the typed layer's
 *    mode-aware api::deref so the same policy is safe under
 *    stop-the-world *and* background-campaign defrag. Works with any
 *    attached service, including Anchorage — which defragments these
 *    structures with *zero* cooperation from the KV code.
 *  - ModelAlloc<M>: an AllocModel (jemalloc/glibc model over a real
 *    address space) with the defrag-hint API; this is what the
 *    activedefrag port (minikv::defragCycle) needs, mirroring
 *    Redis+jemalloc.
 *
 * The handle-based policies are part of the raw API's internals: they
 * hand raw maybe-handles to C-style structures (sds/dict) that manage
 * lifetime explicitly, so allocation stays on the halloc/hfree escape
 * hatch — but every dereference goes through the typed access layer,
 * which is what makes the stores defrag-mode-agnostic.
 */

#ifndef ALASKA_KV_ALLOC_POLICY_H
#define ALASKA_KV_ALLOC_POLICY_H

#include <cstdint>
#include <cstdlib>

#include "alloc_sim/alloc_model.h"
#include "api/access.h"
#include "core/runtime.h"

namespace alaska::kv
{

/** Baseline: libc malloc, raw pointers. */
class LibcAlloc
{
  public:
    static constexpr bool handleBased = false;

    void *alloc(size_t size) { return std::malloc(size); }
    void free(void *ptr) { std::free(ptr); }

    /** Raw pointers need no translation. */
    template <typename T>
    static T *
    deref(T *ptr)
    {
        return ptr;
    }

    /** Defrag hints: a non-moving allocator has none. */
    bool shouldMove(const void *) const { return false; }
};

/**
 * Handle-based: the structure's pointers are Alaska handles.
 *
 * deref() is the typed layer's mode-aware translation (api::deref):
 * the plain one-load translate while only stop-the-world defrag can
 * run, and the scoped mark-aware translation while background
 * campaigns are possible. Under the Scoped discipline callers must
 * bracket each KV operation in an alaska::access_scope (the
 * multi-threaded YCSB driver and the contention tests do); every
 * pointer deref'd inside the scope then stays valid until the scope
 * closes. Under Direct, the raw pointer is stable until the next
 * safepoint — KV operations run between polls, as compiled code would.
 *
 * Shard affinity: halloc routes through the Anchorage service's
 * per-shard sub-heap chains when Anchorage backs the runtime, so a KV
 * store driven by one thread allocates entirely inside that thread's
 * shard and never contends with stores on other threads; hfree from
 * any thread finds the owning shard through the service's lock-free
 * region registry.
 */
class AlaskaAlloc
{
  public:
    static constexpr bool handleBased = true;

    explicit AlaskaAlloc(Runtime &runtime) : runtime_(runtime) {}

    void *alloc(size_t size) { return runtime_.halloc(size); }
    void free(void *ptr) { runtime_.hfree(ptr); }

    /**
     * The compiler-inserted translation, at per-access granularity,
     * routed through the unified typed-API guard path.
     */
    template <typename T>
    static T *
    deref(T *ptr)
    {
        return api::deref(ptr);
    }

    /** Anchorage needs no application cooperation to defragment. */
    bool shouldMove(const void *) const { return false; }

    Runtime &runtime() { return runtime_; }

  private:
    Runtime &runtime_;
};

/**
 * Historical name for the campaign-safe policy. Since the typed layer
 * made deref mode-aware, the one policy serves both defrag modes —
 * the alias remains so existing stores and tests read as intended.
 */
using AlaskaConcurrentAlloc = AlaskaAlloc;

/** An AllocModel (jemalloc-like) behind the policy interface. */
template <typename M>
class ModelAlloc
{
  public:
    static constexpr bool handleBased = false;

    explicit ModelAlloc(M &model) : model_(model) {}

    void *
    alloc(size_t size)
    {
        return reinterpret_cast<void *>(model_.alloc(size));
    }

    void
    free(void *ptr)
    {
        model_.free(reinterpret_cast<uint64_t>(ptr));
    }

    /** Tokens are real addresses when M sits on a RealAddressSpace. */
    template <typename T>
    static T *
    deref(T *ptr)
    {
        return ptr;
    }

    /** jemalloc's defrag hint — what Redis activedefrag polls. */
    bool
    shouldMove(const void *ptr) const
    {
        return model_.shouldMove(reinterpret_cast<uint64_t>(ptr));
    }

    M &model() { return model_; }

  private:
    M &model_;
};

} // namespace alaska::kv

#endif // ALASKA_KV_ALLOC_POLICY_H
