/**
 * @file
 * Allocator policies for the KV applications.
 *
 * The data structures (sds, dict, minikv) are written once against a
 * policy type, mirroring how the paper's evaluation compiles the same
 * unmodified Redis source against glibc malloc or through the Alaska
 * compiler:
 *
 *  - LibcAlloc: plain malloc/free; deref is the identity. The baseline.
 *  - AlaskaAlloc: halloc/hfree; every pointer the structure stores may
 *    be a handle, and deref() is the translation the compiler would
 *    have inserted (per-access granularity, i.e. the conservative
 *    no-hoisting placement), routed through the typed layer's
 *    mode-aware api::deref so the same policy is safe under
 *    stop-the-world *and* background-campaign defrag. Works with any
 *    attached service, including Anchorage — which defragments these
 *    structures with *zero* cooperation from the KV code.
 *  - ModelAlloc<M>: an AllocModel (jemalloc/glibc model over a real
 *    address space) with the defrag-hint API; this is what the
 *    activedefrag port (minikv::defragCycle) needs, mirroring
 *    Redis+jemalloc.
 *
 * The handle-based policies are part of the raw API's internals: they
 * hand raw maybe-handles to C-style structures (sds/dict) that manage
 * lifetime explicitly, so allocation stays on the halloc/hfree escape
 * hatch — but every dereference goes through the typed access layer,
 * which is what makes the stores defrag-mode-agnostic.
 */

#ifndef ALASKA_KV_ALLOC_POLICY_H
#define ALASKA_KV_ALLOC_POLICY_H

#include <cstdint>
#include <cstdlib>

#include "alloc_sim/alloc_model.h"
#include "api/access.h"
#include "core/runtime.h"

namespace alaska::kv
{

namespace kv_detail
{

/**
 * Store guard for raw-pointer policies: the identity, compiled away.
 * Mirrors HandleWriteRef's interface so the structures write through
 * one idiom regardless of policy.
 */
template <typename T>
struct RawWriteRef
{
    T *raw;

    T *get() const { return raw; }
    T &operator*() const { return *raw; }
    T *operator->() const { return raw; }
    T &operator[](size_t i) const { return raw[i]; }
};

/**
 * Store guard for the handle-based policy: translation plus — only
 * under the Scoped discipline — the pin half of the mover handshake
 * (ConcurrentPin), held for the guard's lifetime. Epoch scopes order
 * *reads* against campaigns (an evacuated source stays mapped until
 * every open scope closes), but they cannot order a store: one issued
 * through a pre-mark translation after the mover's copy would land in
 * the doomed source block and be lost at commit. The pin closes
 * exactly that window — the mover aborts on a pre-mark pin, and a
 * post-mark pin's mark-aware translation aborts the mover. Under
 * Direct a store only ever races stop-the-world barriers, which park
 * at safepoints a KV operation never polls, so the guard is the plain
 * one-load translation and pins nothing. Unlike pinned<T> there is no
 * stack pin frame: the guard never outlives its KV operation, so
 * barriers need not see it.
 */
template <typename T>
class HandleWriteRef
{
  public:
    explicit HandleWriteRef(T *maybe_handle)
    {
        if (__builtin_expect(Runtime::translationDiscipline() ==
                                 TranslationDiscipline::Scoped,
                             0)) {
            entry_ = ConcurrentPin::pinFor(maybe_handle);
            raw_ = static_cast<T *>(translateConcurrent(maybe_handle));
        } else {
            raw_ = static_cast<T *>(
                translate(static_cast<const void *>(maybe_handle)));
        }
    }

    ~HandleWriteRef() { ConcurrentPin::unpin(entry_); }

    HandleWriteRef(const HandleWriteRef &) = delete;
    HandleWriteRef &operator=(const HandleWriteRef &) = delete;

    T *get() const { return raw_; }
    T &operator*() const { return *raw_; }
    T *operator->() const { return raw_; }
    T &operator[](size_t i) const { return raw_[i]; }

  private:
    HandleTableEntry *entry_ = nullptr;
    T *raw_ = nullptr;
};

} // namespace kv_detail

/** Baseline: libc malloc, raw pointers. */
class LibcAlloc
{
  public:
    static constexpr bool handleBased = false;

    void *alloc(size_t size) { return std::malloc(size); }
    void free(void *ptr) { std::free(ptr); }

    /** Raw pointers need no translation. */
    template <typename T>
    static T *
    deref(T *ptr)
    {
        return ptr;
    }

    /** Store access: raw pointers are directly writable. */
    template <typename T>
    static kv_detail::RawWriteRef<T>
    write(T *ptr)
    {
        return kv_detail::RawWriteRef<T>{ptr};
    }

    /** Defrag hints: a non-moving allocator has none. */
    bool shouldMove(const void *) const { return false; }
};

/**
 * Handle-based: the structure's pointers are Alaska handles.
 *
 * deref() is the typed layer's mode-aware translation (api::deref):
 * the plain one-load translate while only stop-the-world defrag can
 * run, and the scoped mark-stripping load while background campaigns
 * are possible — never a shared-memory RMW. Under the Scoped
 * discipline callers must bracket each KV operation in an
 * alaska::access_scope (the multi-threaded YCSB driver and the
 * contention tests do); every pointer deref'd inside the scope then
 * stays *readable* until the scope closes, and the structures route
 * every store through write() — the pin-handshake guard — because a
 * store through a bare scoped translation could land in a source
 * block a campaign has already copied out of. Under Direct, the raw
 * pointer is stable (reads and writes) until the next safepoint — KV
 * operations run between polls, as compiled code would — and write()
 * costs nothing beyond the translation.
 *
 * Shard affinity: halloc routes through the Anchorage service's
 * per-shard sub-heap chains when Anchorage backs the runtime, so a KV
 * store driven by one thread allocates entirely inside that thread's
 * shard and never contends with stores on other threads; hfree from
 * any thread finds the owning shard through the service's lock-free
 * region registry.
 */
class AlaskaAlloc
{
  public:
    static constexpr bool handleBased = true;

    explicit AlaskaAlloc(Runtime &runtime) : runtime_(runtime) {}

    void *alloc(size_t size) { return runtime_.halloc(size); }
    void free(void *ptr) { runtime_.hfree(ptr); }

    /**
     * The compiler-inserted translation, at per-access granularity,
     * routed through the unified typed-API guard path. Read-only under
     * the Scoped discipline; see write().
     */
    template <typename T>
    static T *
    deref(T *ptr)
    {
        return api::deref(ptr);
    }

    /**
     * Store access: the translation plus, while campaigns are
     * possible, the per-object pin that arbitrates against an
     * in-flight move (see kv_detail::HandleWriteRef).
     */
    template <typename T>
    static kv_detail::HandleWriteRef<T>
    write(T *ptr)
    {
        return kv_detail::HandleWriteRef<T>(ptr);
    }

    /** Anchorage needs no application cooperation to defragment. */
    bool shouldMove(const void *) const { return false; }

    Runtime &runtime() { return runtime_; }

  private:
    Runtime &runtime_;
};

/**
 * Historical name for the campaign-safe policy. Since the typed layer
 * made deref mode-aware, the one policy serves both defrag modes —
 * the alias remains so existing stores and tests read as intended.
 */
using AlaskaConcurrentAlloc = AlaskaAlloc;

/** An AllocModel (jemalloc-like) behind the policy interface. */
template <typename M>
class ModelAlloc
{
  public:
    static constexpr bool handleBased = false;

    explicit ModelAlloc(M &model) : model_(model) {}

    void *
    alloc(size_t size)
    {
        return reinterpret_cast<void *>(model_.alloc(size));
    }

    void
    free(void *ptr)
    {
        model_.free(reinterpret_cast<uint64_t>(ptr));
    }

    /** Tokens are real addresses when M sits on a RealAddressSpace. */
    template <typename T>
    static T *
    deref(T *ptr)
    {
        return ptr;
    }

    /** Store access: model tokens are directly writable. */
    template <typename T>
    static kv_detail::RawWriteRef<T>
    write(T *ptr)
    {
        return kv_detail::RawWriteRef<T>{ptr};
    }

    /** jemalloc's defrag hint — what Redis activedefrag polls. */
    bool
    shouldMove(const void *ptr) const
    {
        return model_.shouldMove(reinterpret_cast<uint64_t>(ptr));
    }

    M &model() { return model_; }

  private:
    M &model_;
};

} // namespace alaska::kv

#endif // ALASKA_KV_ALLOC_POLICY_H
