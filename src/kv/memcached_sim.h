/**
 * @file
 * A memcached-like multithreaded KV server simulation (paper §5.6,
 * Figure 12): a sharded hash table served by N worker threads, driven
 * by an in-process closed-loop load generator (the paper's loopback
 * network replaced by function calls — it only added noise, as §5.6
 * notes). Each worker records per-request latency; an Anchorage pause
 * thread relocates ~1 MiB at a configurable interval, and the
 * experiment measures how pause frequency and thread count move the
 * latency distribution.
 */

#ifndef ALASKA_KV_MEMCACHED_SIM_H
#define ALASKA_KV_MEMCACHED_SIM_H

#include <memory>
#include <mutex>
#include <vector>

#include "base/stats.h"
#include "kv/minikv.h"
#include "ycsb/ycsb.h"

namespace alaska::kv
{

/** Result of one memcached run. */
struct MemcachedResult
{
    LatencyDigest latency;
    uint64_t operations = 0;
    double wallSec = 0;
};

/**
 * Sharded KV served by worker threads.
 *
 * The allocator policy decides what the store runs on; with
 * AlaskaAlloc, workers register with the runtime and poll safepoints
 * between requests, so stop-the-world pauses park them exactly as
 * compiled code would.
 */
template <typename A>
class MemcachedSim
{
  public:
    MemcachedSim(A &alloc, int shards)
        : alloc_(alloc)
    {
        for (int i = 0; i < shards; i++) {
            shards_.push_back(std::make_unique<Shard>(alloc));
        }
    }

    /** Preload records from a workload definition. */
    void
    load(const ycsb::Workload &workload)
    {
        for (uint64_t id = 0; id < workload.records(); id++) {
            const std::string key = ycsb::Workload::keyFor(id);
            shardFor(key).set(key, workload.valueFor(id));
        }
    }

    /** Serve one request (thread-safe via shard locks). */
    void
    serve(const ycsb::Request &request, const ycsb::Workload &workload)
    {
        const std::string key = ycsb::Workload::keyFor(request.key);
        Shard &shard = shardFor(key);
        switch (request.op) {
          case ycsb::OpType::Read:
            shard.get(key);
            break;
          case ycsb::OpType::Update:
          case ycsb::OpType::Insert:
            shard.set(key, workload.valueFor(request.key));
            break;
          case ycsb::OpType::ReadModifyWrite: {
            auto value = shard.get(key);
            std::string modified =
                value.value_or(std::string(workload.valueSize(), 'x'));
            if (!modified.empty())
                modified[0] ^= 1;
            shard.set(key, modified);
            break;
          }
        }
    }

    size_t
    keyCount() const
    {
        size_t n = 0;
        for (const auto &shard : shards_)
            n += shard->kv.stats().keys;
        return n;
    }

  private:
    struct Shard
    {
        explicit Shard(A &alloc) : kv(alloc) {}

        std::optional<std::string>
        get(const std::string &key)
        {
            std::lock_guard<std::mutex> guard(mutex);
            return kv.get(key);
        }

        void
        set(const std::string &key, const std::string &value)
        {
            std::lock_guard<std::mutex> guard(mutex);
            kv.set(key, value);
        }

        std::mutex mutex;
        MiniKv<A> kv;
    };

    Shard &
    shardFor(const std::string &key)
    {
        return *shards_[bytesHash(key) % shards_.size()];
    }

    A &alloc_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace alaska::kv

#endif // ALASKA_KV_MEMCACHED_SIM_H
